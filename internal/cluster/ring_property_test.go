package cluster

import (
	"fmt"
	"testing"
)

// ringSample is the key population the ring properties are checked
// over. Deterministic (no RNG): the hash mixes enough that sequential
// IDs exercise the ring as well as random ones, and failures reproduce.
func ringSample(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("rt-%06d", i)
	}
	return keys
}

func ringNodes(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("ring-node-%d", i)
	}
	return ids
}

// TestRingRelocationProperty is the metamorphic contract the whole
// rebalancing design prices against: growing an N-node ring to N+1
// relocates about 1/(N+1) of the key space — never more than that plus
// a vnode-variance allowance — and every key that moves, moves TO the
// added node; no key is shuffled between untouched nodes. Shrinking is
// checked as the exact inverse: removing the node restores the original
// owner of every key, bit for bit. Transfer cost during a scale event
// is therefore bounded by the joining (or draining) node's own share.
//
// Table-driven over N=2..8 and the vnode counts in deployment reach;
// 100k sampled keys (10k under -short).
func TestRingRelocationProperty(t *testing.T) {
	sample := ringSample(100_000)
	if testing.Short() {
		sample = ringSample(10_000)
	}
	for n := 2; n <= 8; n++ {
		for _, vnodes := range []int{16, 64, 128} {
			t.Run(fmt.Sprintf("n=%d/vnodes=%d", n, vnodes), func(t *testing.T) {
				ids := ringNodes(n)
				before := NewRing(ids, vnodes)
				added := fmt.Sprintf("ring-node-%d", n)
				after := NewRing(append(append([]string(nil), ids...), added), vnodes)

				moved := 0
				for _, key := range sample {
					ob, oa := before.Owner(key), after.Owner(key)
					if ob == oa {
						continue
					}
					moved++
					if oa != added {
						t.Fatalf("key %q moved %s -> %s, but only the added node %s may gain keys",
							key, ob, oa, added)
					}
				}
				frac := float64(moved) / float64(len(sample))
				ideal := 1.0 / float64(n+1)
				// Allowance: vnode placement is uneven, so the new
				// node's share can overshoot the ideal. The bound is
				// double the ideal share — far below the 2/(N+1) a
				// naive mod-N rehash would blow through (it moves
				// (N-1)/N of ALL keys), and comfortably above observed
				// variance even at 16 vnodes.
				if frac > 2*ideal {
					t.Fatalf("adding 1 node to %d moved %.2f%% of keys, want <= %.2f%%",
						n, 100*frac, 100*2*ideal)
				}
				if moved == 0 {
					t.Fatal("adding a node moved no keys: the new node owns nothing")
				}

				// Shrink is the exact inverse of grow.
				shrunk := NewRing(ids, vnodes)
				for _, key := range sample {
					if shrunk.Owner(key) != before.Owner(key) {
						t.Fatalf("removing the added node did not restore ownership of %q", key)
					}
				}
			})
		}
	}
}

// TestRingReplicaSetStability extends the relocation property to full
// replica sets: after adding a node, a key's R-set may gain the new
// node (displacing at most one member) but the surviving members keep
// their relative order — journals on untouched successors stay valid
// across a scale event.
func TestRingReplicaSetStability(t *testing.T) {
	sample := ringSample(20_000)
	if testing.Short() {
		sample = ringSample(4_000)
	}
	const n, r = 4, 3
	ids := ringNodes(n)
	added := fmt.Sprintf("ring-node-%d", n)
	before := NewRing(ids, DefaultVnodes)
	after := NewRing(append(append([]string(nil), ids...), added), DefaultVnodes)
	for _, key := range sample {
		sb, sa := before.Lookup(key, r), after.Lookup(key, r)
		// Survivors of the old set that remain in the new set must
		// appear in the same relative order.
		keep := make([]string, 0, r)
		inNew := make(map[string]bool, r)
		for _, id := range sa {
			inNew[id] = true
		}
		for _, id := range sb {
			if inNew[id] {
				keep = append(keep, id)
			}
		}
		ki := 0
		for _, id := range sa {
			if ki < len(keep) && id == keep[ki] {
				ki++
			}
		}
		if ki != len(keep) {
			t.Fatalf("replica set for %q reordered surviving nodes: before %v after %v", key, sb, sa)
		}
		// At most one displacement, and only by the added node.
		lost := len(sb) - len(keep)
		if lost > 1 {
			t.Fatalf("replica set for %q lost %d members on a one-node add: before %v after %v",
				key, lost, sb, sa)
		}
		if lost == 1 && !inNew[added] {
			t.Fatalf("replica set for %q dropped a member without gaining the added node: before %v after %v",
				key, sb, sa)
		}
	}
}
