package cluster

import (
	"context"
	"testing"
	"time"

	"natpeek/internal/loadgen"
)

// TestChaosSoakKillRejoin is the cluster's headline correctness proof:
// a three-node cluster takes a full loadgen soak through the front
// while one node is crash-killed mid-run and later rejoins (same ID,
// fresh incarnation, empty store). The oracle is loadgen's strict
// accounting — every generated row counted at generation time against
// the cluster-wide stats delta — plus an independent sum over the live
// nodes' stores. Zero lost AND zero duplicated rows, because a lost
// row undershoots the generated total and a double-applied row
// overshoots it, and the totals must be exactly equal.
//
// Everything the failure throws at the pipeline is absorbed by the
// same two properties the design leans on: at-least-once client
// retries (transport errors and 502/503 during the blind window where
// the front still routes to the corpse) and idempotent application
// (journal replays, post-rejoin retries). `make check-cluster` runs
// this under -race at full size; -short keeps it in CI budget.
func TestChaosSoakKillRejoin(t *testing.T) {
	routers, cycles := 48, 10
	if testing.Short() {
		routers, cycles = 16, 6
	}
	tc := startTestCluster(t, 3, 2)

	cfg := loadgen.Config{
		BaseURL:  frontURL(tc),
		Routers:  routers,
		Cycles:   cycles,
		Interval: 50 * time.Millisecond,
		Ramp:     200 * time.Millisecond,
		Workers:  6,
		Seed:     1,
	}
	type outcome struct {
		rep *loadgen.Report
		err error
	}
	done := make(chan outcome, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() {
		rep, err := loadgen.Run(ctx, cfg)
		done <- outcome{rep, err}
	}()

	// Let traffic land on the victim first, then crash it.
	victim := tc.nodes[1]
	waitFor(t, 15*time.Second, "victim to own some rows", func() bool {
		st := victim.Store()
		return len(st.Uptime)+len(st.Capacity)+len(st.Counts)+len(st.Sightings)+
			len(st.WiFi)+len(st.Flows)+len(st.Throughput) > 0
	})
	if err := victim.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	t.Logf("killed %s mid-run", victim.ID())

	// Wait for the failure detector to notice, then rejoin under the
	// same ring identity with fresh ephemeral addresses — the classic
	// replace-the-box operation.
	tc.waitAliveNodes(2)
	reborn, err := NewNode(NodeConfig{
		ID:      victim.ID(),
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers:  []string{tc.nodes[0].CtrlAddr(), tc.nodes[2].CtrlAddr()},
		Gossip: fastGossip,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	tc.nodes[1] = reborn // cleanup closes the reborn node; the victim is already dead
	tc.waitAliveNodes(3)
	t.Logf("%s rejoined", reborn.ID())

	out := <-done
	if out.err != nil {
		t.Fatalf("loadgen run: %v", out.err)
	}
	rep := out.rep
	t.Logf("soak: %d rows generated, %d requests, %d retries, lost=%d",
		rep.Generated.Total(), rep.Requests, rep.Retries, rep.Lost)

	// Journal replays race the end of the run, so the authoritative
	// check is convergence: the live stores must reach exactly the
	// generated row counts and then stay there.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && clusterRows(tc) != rep.Generated {
		time.Sleep(20 * time.Millisecond)
	}
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster stores did not converge:\n got %+v\nwant %+v", got, rep.Generated)
	}
	time.Sleep(10 * fastGossip.Interval)
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster rows diverged after settling:\n got %+v\nwant %+v", got, rep.Generated)
	}
	// Loadgen's own before/after stats oracle usually agrees already;
	// a positive Lost here only means its final stats fetch beat the
	// last journal replay, which the convergence wait above covers.
	// What it must never show is negative loss — that is a duplicated
	// row no replay can explain.
	if rep.Lost < 0 {
		t.Fatalf("negative lost rows (%d): duplicated rows in cluster stats", rep.Lost)
	}
	// Retries of every acked key must flatten to duplicates, even for
	// keys whose owner died and whose rows now live on a successor.
	if rep.Retries == 0 {
		t.Log("soak note: run saw no retries; kill window may not have overlapped traffic")
	}
}

// clusterRows sums per-dataset row counts across the live nodes'
// stores, shaped as loadgen.Rows for direct comparison with a report.
func clusterRows(tc *testCluster) loadgen.Rows {
	var r loadgen.Rows
	for _, nd := range tc.nodes {
		st := nd.Store()
		r.Uptime += int64(len(st.Uptime))
		r.Capacity += int64(len(st.Capacity))
		r.Counts += int64(len(st.Counts))
		r.Sightings += int64(len(st.Sightings))
		r.WiFi += int64(len(st.WiFi))
		r.Flows += int64(len(st.Flows))
		r.Throughput += int64(len(st.Throughput))
	}
	return r
}
