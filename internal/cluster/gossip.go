package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/telemetry"
)

// gossiper is the control-plane client half shared by nodes and fronts:
// it bumps the local beat each round, exchanges full member tables with
// one random live peer, and merges what comes back. Peer selection
// falls back to the configured seeds while the table is empty.
type gossiper struct {
	id    string
	ms    *membership
	httpc *http.Client
	seeds []string
	log   *slog.Logger

	mu   sync.Mutex
	rand *rand.Rand

	mRounds *telemetry.Counter
	mErrs   *telemetry.Counter
}

func newGossiper(id string, ms *membership, httpc *http.Client, seeds []string, log *slog.Logger) *gossiper {
	return &gossiper{
		id: id, ms: ms, httpc: httpc, seeds: seeds, log: log,
		rand: rand.New(rand.NewSource(time.Now().UnixNano())),
		mRounds: telemetry.Default.CounterVec("natpeek_cluster_gossip_rounds_total",
			"Gossip exchanges initiated, per member.", "member").With(id),
		mErrs: telemetry.Default.CounterVec("natpeek_cluster_gossip_errors_total",
			"Gossip exchanges that failed, per member.", "member").With(id),
	}
}

// learn runs learn-only exchanges against the seeds: an empty member
// list reveals nothing about this process, so a joiner can fetch the
// cluster's state before it is routable.
func (g *gossiper) learn() {
	for _, peer := range g.seeds {
		resp, err := g.exchange(peer, &Gossip{From: g.id})
		if err != nil {
			g.log.Debug("join: seed unreachable", "peer", peer, "err", err)
			continue
		}
		g.absorb(resp)
	}
}

// once runs one gossip round: bump, pick, exchange, merge.
func (g *gossiper) once() {
	g.ms.bump()
	target := g.pickPeer()
	if target == "" {
		return
	}
	g.mRounds.Inc()
	resp, err := g.exchange(target, g.outbound())
	if err != nil {
		g.mErrs.Inc()
		return
	}
	g.absorb(resp)
}

// broadcast exchanges with every known non-dead peer (and the seeds, in
// case the table is still empty). Rebalance coordinators call it to
// push an epoch proposal or commit everywhere at once instead of
// waiting for random-pair rounds to percolate it.
func (g *gossiper) broadcast() {
	g.ms.bump()
	addrs := make(map[string]bool)
	for _, mv := range g.ms.view() {
		if mv.ID != g.id && mv.State != StateDead && mv.CtrlAddr != "" {
			addrs[mv.CtrlAddr] = true
		}
	}
	for _, s := range g.seeds {
		addrs[s] = true
	}
	for addr := range addrs {
		resp, err := g.exchange(addr, g.outbound())
		if err != nil {
			g.mErrs.Inc()
			continue
		}
		g.absorb(resp)
	}
}

// outbound builds this process's half of an exchange: full member table
// plus epoch state.
func (g *gossiper) outbound() *Gossip {
	cur, next := g.ms.epochs()
	return &Gossip{From: g.id, Members: g.ms.snapshot(), Cur: cur, Next: next}
}

// absorb merges a peer's half of an exchange.
func (g *gossiper) absorb(resp *Gossip) {
	if resp == nil {
		return
	}
	g.ms.merge(resp.Members)
	g.ms.mergeEpochs(resp.Cur, resp.Next)
}

// pickPeer chooses a random non-dead member's control address.
func (g *gossiper) pickPeer() string {
	var addrs []string
	for _, mv := range g.ms.view() {
		if mv.ID != g.id && mv.State != StateDead {
			addrs = append(addrs, mv.CtrlAddr)
		}
	}
	if len(addrs) == 0 {
		addrs = g.seeds
	}
	if len(addrs) == 0 {
		return ""
	}
	g.mu.Lock()
	i := g.rand.Intn(len(addrs))
	g.mu.Unlock()
	return addrs[i]
}

// exchange POSTs one gossip message and returns the peer's table.
func (g *gossiper) exchange(ctrlAddr string, gm *Gossip) (*Gossip, error) {
	m, err := postCtrl(g.httpc, ctrlAddr, "/cluster/gossip",
		&Message{Kind: MsgGossip, Gossip: gm}, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if m.Kind != MsgGossip {
		return nil, fmt.Errorf("cluster: gossip reply kind %d", m.Kind)
	}
	return m.Gossip, nil
}

// postCtrl sends one NPC1 message to a peer's control plane and decodes
// the NPC1 reply.
func postCtrl(httpc *http.Client, ctrlAddr, path string, m *Message, timeout time.Duration) (*Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+ctrlAddr+path, bytes.NewReader(AppendMessage(nil, m)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ctrlContentType)
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, ctrlMaxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("cluster: %s%s: %s: %s", ctrlAddr, path, resp.Status, bytes.TrimSpace(body))
	}
	if len(body) == 0 {
		// Acknowledged without a reply body (replicate).
		return nil, nil
	}
	return DecodeMessage(body)
}
