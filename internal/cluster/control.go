package cluster

import (
	"encoding/binary"
	"fmt"
)

// The control plane speaks a small binary protocol ("NPC1") over plain
// HTTP POSTs between peers: membership gossip, the key manifests a
// rejoining node pulls to rebuild its dedupe index, and the replicate
// frames the front fans out to a write's successor nodes. Like NPB1 it
// is length-prefixed varint framing with a bounds-checked decoder —
// counts and lengths are validated against the remaining input before a
// single byte of them is allocated, and trailing bytes after a complete
// message are an error, never silently ignored. The codec is fuzzed
// (FuzzControlDecode) with checked-in seed corpora.

// ctrlMagic starts every NPC1 buffer ("natpeek control, version 1").
const ctrlMagic = "NPC1"

// MsgKind discriminates the control-plane message envelope.
type MsgKind uint8

// Control-plane message kinds.
const (
	MsgGossip MsgKind = iota + 1
	MsgManifestRequest
	MsgManifestResponse
	MsgReplicate
	MsgTransferRequest
	MsgTransferResponse
	MsgTransferKeys
	MsgDrain

	msgKindMax = MsgDrain
)

// Role distinguishes ring-eligible collector nodes from front routers.
type Role uint8

// Member roles. Only RoleNode members project points onto the hash
// ring; RoleFront members gossip so nodes know their routers, but own
// nothing.
const (
	RoleNode Role = iota
	RoleFront
)

func (r Role) String() string {
	if r == RoleFront {
		return "front"
	}
	return "node"
}

// Member is one process's gossiped identity. State is deliberately NOT
// part of the wire form: each process judges liveness locally from how
// recently a member's Beat advanced, so a partitioned peer's stale
// opinion can never declare a node dead cluster-wide.
type Member struct {
	ID       string
	Role     Role
	CtrlAddr string // control-plane HTTP address (gossip, replicate, manifest)
	DataAddr string // data-plane address (collector /v1/* for nodes, front HTTP for fronts)
	// Incarnation is bumped each time the process (re)starts — a
	// rejoining node's fresh incarnation supersedes everything peers
	// remember about its previous life, including its old addresses.
	Incarnation uint64
	// Beat is the member's self-incremented heartbeat counter; liveness
	// is "has this advanced recently, as observed by MY clock".
	Beat uint64
	// EpochVersion is the highest ring-epoch version this member has
	// seen (committed or pending). A rebalance coordinator waits for
	// every live member's EpochVersion to reach its proposal before
	// moving a single row — that barrier is what makes the fronts'
	// cutover fencing airtight.
	EpochVersion uint64
	// Joining marks a node that has started its process but not yet
	// completed ownership transfer: it gossips (so peers learn its
	// addresses and the epoch spreads) but must not appear in the
	// legacy membership-derived ring until its join epoch commits.
	Joining bool
}

// RingEpoch is one versioned ring composition. Epochs totally order
// planned membership changes: a committed epoch's Nodes ARE the ring
// (filtered by local liveness), and a pending epoch fences writes whose
// ownership is about to move. Versions only grow; gossip merges by
// version with committed state always superseding a pending proposal of
// the same version.
type RingEpoch struct {
	Version   uint64
	Committed bool
	Nodes     []string
}

func (e *RingEpoch) clone() *RingEpoch {
	if e == nil {
		return nil
	}
	return &RingEpoch{Version: e.Version, Committed: e.Committed,
		Nodes: append([]string(nil), e.Nodes...)}
}

// Gossip is one half of an anti-entropy exchange: the full membership
// the sender knows. The receiver merges it and answers with its own.
// Full-state exchange is quadratic in members but the tier is tens of
// processes, not thousands; delta gossip is a non-goal at this scale.
type Gossip struct {
	From    string
	Members []Member
	// Cur/Next piggyback the sender's ring-epoch state (latest
	// committed epoch and pending proposal, either may be nil) on every
	// exchange, so epochs spread exactly as fast as membership does.
	Cur  *RingEpoch
	Next *RingEpoch
}

// ManifestRequest asks a peer for applied idempotency keys. With
// Routers empty it is the join-time bulk pull: keys the peer applied
// for every router the joiner would own under the prospective
// membership. With Routers set it is a targeted query — keys for
// exactly those routers, regardless of ring ownership — used by the
// first-write gate to catch writes applied elsewhere during an
// ownership change.
type ManifestRequest struct {
	Joiner  string
	Members []Member
	Routers []string
}

// ManifestEntry is one router's applied keys.
type ManifestEntry struct {
	Router string
	Keys   []string
}

// ManifestResponse is the answering peer's applied-key manifest.
type ManifestResponse struct {
	From    string
	Entries []ManifestEntry
}

// Replicate carries one acknowledged write to a successor node: the
// placement that chose it plus the raw NPB1 batch bytes, journaled
// verbatim. The successor never decodes rows — if the owner dies, the
// first live successor replays the bytes as a plain /v1/batch POST and
// the idempotency keys inside make the replay converge.
type Replicate struct {
	Owner      string
	Successors []string
	Batch      []byte
}

// TransferRequest asks a peer to push every row it holds that the
// proposed epoch assigns to someone else, through the new owners' own
// data planes. The peer adopts Epoch as its pending proposal (fencing
// its view too), runs extract-and-send sessions until a pass moves
// nothing, and answers with the row count it moved — the coordinator
// keeps issuing rounds until a full round is all-zero.
type TransferRequest struct {
	From  string
	Epoch *RingEpoch
}

// TransferResponse reports one peer's completed transfer pass.
type TransferResponse struct {
	From string
	Rows uint64
}

// TransferKeys pushes moved routers' idempotency keys to their new
// owner, chunked, so client retries that land there after cutover
// dedupe instead of re-applying. (The first-write manifest gate would
// eventually pull the same keys; pushing them makes the window not
// depend on the source staying alive — essential for drains.)
type TransferKeys struct {
	From    string
	Entries []ManifestEntry
}

// Drain asks a node (always addressed to itself — the front relays the
// operator request to the named node's control plane) to transfer all
// its ownership away and leave the ring.
type Drain struct {
	Node string
}

// Message is the decoded one-of envelope; exactly the field matching
// Kind is non-nil.
type Message struct {
	Kind         MsgKind
	Gossip       *Gossip
	ManifestReq  *ManifestRequest
	ManifestResp *ManifestResponse
	Replicate    *Replicate
	TransferReq  *TransferRequest
	TransferResp *TransferResponse
	TransferKeys *TransferKeys
	Drain        *Drain
}

// AppendMessage encodes a message onto dst and returns the extended
// buffer.
func AppendMessage(dst []byte, m *Message) []byte {
	e := ctrlEncoder{buf: append(dst, ctrlMagic...)}
	e.buf = append(e.buf, byte(m.Kind))
	switch m.Kind {
	case MsgGossip:
		e.str(m.Gossip.From)
		e.members(m.Gossip.Members)
		e.epoch(m.Gossip.Cur)
		e.epoch(m.Gossip.Next)
	case MsgManifestRequest:
		e.str(m.ManifestReq.Joiner)
		e.members(m.ManifestReq.Members)
		e.uvarint(uint64(len(m.ManifestReq.Routers)))
		for _, rt := range m.ManifestReq.Routers {
			e.str(rt)
		}
	case MsgManifestResponse:
		e.str(m.ManifestResp.From)
		e.uvarint(uint64(len(m.ManifestResp.Entries)))
		for _, en := range m.ManifestResp.Entries {
			e.str(en.Router)
			e.uvarint(uint64(len(en.Keys)))
			for _, k := range en.Keys {
				e.str(k)
			}
		}
	case MsgReplicate:
		e.str(m.Replicate.Owner)
		e.uvarint(uint64(len(m.Replicate.Successors)))
		for _, s := range m.Replicate.Successors {
			e.str(s)
		}
		e.uvarint(uint64(len(m.Replicate.Batch)))
		e.buf = append(e.buf, m.Replicate.Batch...)
	case MsgTransferRequest:
		e.str(m.TransferReq.From)
		e.epoch(m.TransferReq.Epoch)
	case MsgTransferResponse:
		e.str(m.TransferResp.From)
		e.uvarint(m.TransferResp.Rows)
	case MsgTransferKeys:
		e.str(m.TransferKeys.From)
		e.uvarint(uint64(len(m.TransferKeys.Entries)))
		for _, en := range m.TransferKeys.Entries {
			e.str(en.Router)
			e.uvarint(uint64(len(en.Keys)))
			for _, k := range en.Keys {
				e.str(k)
			}
		}
	case MsgDrain:
		e.str(m.Drain.Node)
	}
	return e.buf
}

type ctrlEncoder struct{ buf []byte }

func (e *ctrlEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *ctrlEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *ctrlEncoder) members(ms []Member) {
	e.uvarint(uint64(len(ms)))
	for _, m := range ms {
		e.str(m.ID)
		e.buf = append(e.buf, byte(m.Role))
		e.str(m.CtrlAddr)
		e.str(m.DataAddr)
		e.uvarint(m.Incarnation)
		e.uvarint(m.Beat)
		e.uvarint(m.EpochVersion)
		var flags byte
		if m.Joining {
			flags |= memberFlagJoining
		}
		e.buf = append(e.buf, flags)
	}
}

// memberFlagJoining marks a Member still mid-join (see Member.Joining).
// Unknown flag bits are a decode error, keeping the encoding canonical.
const memberFlagJoining = 1 << 0

// epoch encodes an optional RingEpoch: a presence byte, then version,
// committed flag, and the node list.
func (e *ctrlEncoder) epoch(ep *RingEpoch) {
	if ep == nil {
		e.buf = append(e.buf, 0)
		return
	}
	e.buf = append(e.buf, 1)
	e.uvarint(ep.Version)
	var c byte
	if ep.Committed {
		c = 1
	}
	e.buf = append(e.buf, c)
	e.uvarint(uint64(len(ep.Nodes)))
	for _, id := range ep.Nodes {
		e.str(id)
	}
}

// DecodeMessage decodes one NPC1 message. The whole buffer must be
// exactly one message: trailing bytes are an error.
func DecodeMessage(buf []byte) (*Message, error) {
	d := ctrlDecoder{buf: buf}
	if len(buf) < len(ctrlMagic)+1 || string(buf[:len(ctrlMagic)]) != ctrlMagic {
		return nil, fmt.Errorf("cluster: control message lacks NPC1 magic")
	}
	d.pos = len(ctrlMagic)
	m := &Message{Kind: MsgKind(buf[d.pos])}
	d.pos++
	var err error
	switch m.Kind {
	case MsgGossip:
		g := &Gossip{}
		if g.From, err = d.str(); err == nil {
			g.Members, err = d.members()
		}
		if err == nil {
			g.Cur, err = d.epoch()
		}
		if err == nil {
			g.Next, err = d.epoch()
		}
		m.Gossip = g
	case MsgManifestRequest:
		r := &ManifestRequest{}
		if r.Joiner, err = d.str(); err != nil {
			break
		}
		if r.Members, err = d.members(); err != nil {
			break
		}
		var n int
		if n, err = d.count(); err != nil {
			break
		}
		for i := 0; i < n; i++ {
			var rt string
			if rt, err = d.str(); err != nil {
				break
			}
			r.Routers = append(r.Routers, rt)
		}
		m.ManifestReq = r
	case MsgManifestResponse:
		r := &ManifestResponse{}
		if r.From, err = d.str(); err != nil {
			break
		}
		var n int
		if n, err = d.count(); err != nil {
			break
		}
		for i := 0; i < n && err == nil; i++ {
			var en ManifestEntry
			if en.Router, err = d.str(); err != nil {
				break
			}
			var nk int
			if nk, err = d.count(); err != nil {
				break
			}
			for j := 0; j < nk; j++ {
				var k string
				if k, err = d.str(); err != nil {
					break
				}
				en.Keys = append(en.Keys, k)
			}
			r.Entries = append(r.Entries, en)
		}
		m.ManifestResp = r
	case MsgReplicate:
		r := &Replicate{}
		if r.Owner, err = d.str(); err != nil {
			break
		}
		var n int
		if n, err = d.count(); err != nil {
			break
		}
		for i := 0; i < n; i++ {
			var s string
			if s, err = d.str(); err != nil {
				break
			}
			r.Successors = append(r.Successors, s)
		}
		if err == nil {
			var b []byte
			if b, err = d.strBytes(); err == nil {
				// Copy out (callers journal batches past the request
				// buffer's lifetime); always non-nil so an empty batch
				// re-encodes identically.
				r.Batch = append([]byte{}, b...)
			}
		}
		m.Replicate = r
	case MsgTransferRequest:
		r := &TransferRequest{}
		if r.From, err = d.str(); err == nil {
			r.Epoch, err = d.epoch()
		}
		m.TransferReq = r
	case MsgTransferResponse:
		r := &TransferResponse{}
		if r.From, err = d.str(); err == nil {
			r.Rows, err = d.uvarint()
		}
		m.TransferResp = r
	case MsgTransferKeys:
		r := &TransferKeys{}
		if r.From, err = d.str(); err != nil {
			break
		}
		var n int
		if n, err = d.count(); err != nil {
			break
		}
		for i := 0; i < n && err == nil; i++ {
			var en ManifestEntry
			if en.Router, err = d.str(); err != nil {
				break
			}
			var nk int
			if nk, err = d.count(); err != nil {
				break
			}
			for j := 0; j < nk; j++ {
				var k string
				if k, err = d.str(); err != nil {
					break
				}
				en.Keys = append(en.Keys, k)
			}
			r.Entries = append(r.Entries, en)
		}
		m.TransferKeys = r
	case MsgDrain:
		r := &Drain{}
		r.Node, err = d.str()
		m.Drain = r
	default:
		return nil, fmt.Errorf("cluster: unknown control message kind %d", m.Kind)
	}
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after control message", len(d.buf)-d.pos)
	}
	return m, nil
}

type ctrlDecoder struct {
	buf []byte
	pos int
}

func (d *ctrlDecoder) corrupt(what string) error {
	return fmt.Errorf("cluster: corrupt control message: %s at offset %d", what, d.pos)
}

func (d *ctrlDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.corrupt("uvarint")
	}
	d.pos += n
	return v, nil
}

// count reads a list length and bounds it by the remaining input —
// every element costs at least one encoded byte, so a count exceeding
// the bytes left is forged and rejected before any allocation sized
// from it.
func (d *ctrlDecoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)-d.pos) {
		return 0, d.corrupt("count exceeds input")
	}
	return int(v), nil
}

func (d *ctrlDecoder) strBytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, d.corrupt("length exceeds input")
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *ctrlDecoder) str() (string, error) {
	b, err := d.strBytes()
	return string(b), err
}

func (d *ctrlDecoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.corrupt("truncated")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *ctrlDecoder) members() ([]Member, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	var out []Member
	for i := 0; i < n; i++ {
		var m Member
		if m.ID, err = d.str(); err != nil {
			return nil, err
		}
		role, err := d.byte()
		if err != nil {
			return nil, err
		}
		if role > byte(RoleFront) {
			return nil, d.corrupt("unknown role")
		}
		m.Role = Role(role)
		if m.CtrlAddr, err = d.str(); err != nil {
			return nil, err
		}
		if m.DataAddr, err = d.str(); err != nil {
			return nil, err
		}
		if m.Incarnation, err = d.uvarint(); err != nil {
			return nil, err
		}
		if m.Beat, err = d.uvarint(); err != nil {
			return nil, err
		}
		if m.EpochVersion, err = d.uvarint(); err != nil {
			return nil, err
		}
		flags, err := d.byte()
		if err != nil {
			return nil, err
		}
		if flags&^memberFlagJoining != 0 {
			return nil, d.corrupt("unknown member flags")
		}
		m.Joining = flags&memberFlagJoining != 0
		out = append(out, m)
	}
	return out, nil
}

// epoch decodes an optional RingEpoch (presence byte, version,
// committed flag, node list). Presence and committed bytes outside
// {0,1} are rejected so every valid message has exactly one encoding.
func (d *ctrlDecoder) epoch() (*RingEpoch, error) {
	p, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch p {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, d.corrupt("epoch presence byte")
	}
	e := &RingEpoch{}
	if e.Version, err = d.uvarint(); err != nil {
		return nil, err
	}
	c, err := d.byte()
	if err != nil {
		return nil, err
	}
	if c > 1 {
		return nil, d.corrupt("epoch committed byte")
	}
	e.Committed = c == 1
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var id string
		if id, err = d.str(); err != nil {
			return nil, err
		}
		e.Nodes = append(e.Nodes, id)
	}
	return e, nil
}
