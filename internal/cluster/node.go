package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/telemetry"
	"natpeek/internal/wire"
)

// ctrlContentType is the media type of NPC1 control-plane requests.
const ctrlContentType = "application/x-natpeek-ctrl"

// ctrlMaxBody bounds control-plane request bodies. Replicate frames
// carry at most one data-plane batch (8 MiB) plus framing; gossip and
// manifests are far smaller.
const ctrlMaxBody = 9 << 20

// NodeConfig configures one cluster collector node.
type NodeConfig struct {
	// ID is the node's stable identity on the hash ring. Required.
	ID string
	// UDPAddr/HTTPAddr are the wrapped collector's listen addresses
	// (the data plane); CtrlAddr is the control plane's. Use
	// "127.0.0.1:0" style addresses for ephemeral ports.
	UDPAddr, HTTPAddr, CtrlAddr string
	// Peers seeds discovery: control-plane addresses of any existing
	// members. Empty for the first node of a cluster.
	Peers []string
	// Gossip tunes the anti-entropy exchange and failure detector.
	Gossip GossipConfig
	// Store, when non-nil, is ingested into instead of a fresh one.
	Store dataset.IngestStore
	// MaxInflight caps concurrent data-plane uploads (collector
	// SetMaxInflight semantics); 0 keeps the collector default.
	MaxInflight int
	// Joining starts the node outside the routing ring: it gossips (so
	// peers learn its addresses) but owns nothing until JoinRing
	// commits the epoch that includes it. Scale-out always sets this —
	// a new node that silently appeared in the membership-derived ring
	// would take writes for shards whose history lives elsewhere.
	Joining bool
}

// Node is one cluster member: a full collector server (the data plane,
// untouched semantics — admission control, dedupe, tracing) plus the
// control plane that makes it a cluster: gossip membership, a
// replication journal for batches it is a successor for, key manifests
// for rejoining peers, and failover replay when an owner dies.
type Node struct {
	cfg NodeConfig
	srv *collector.Server
	ms  *membership
	log *slog.Logger

	ctrl   *http.Server
	ctrlLn net.Listener
	httpc  *http.Client

	mu sync.Mutex
	// journal holds replicate frames this node accepted as a successor:
	// raw NPB1 batch bytes plus the placement that chose this node. On
	// an owner's death the first live successor replays the bytes into
	// its own collector; idempotency keys make replays converge.
	journal     []*journalEntry
	journalSeen map[uint64]bool
	// ownerKeys indexes every idempotency key this node applied, per
	// router — the source for the manifests a rejoining node seeds its
	// dedupe index from.
	ownerKeys map[string]map[string]bool
	// Journaled frames' keys are indexed per entry (journalEntry.keys):
	// manifests serve a frame's keys only while its owner still holds
	// the rows (or after the replay landed them somewhere) — serving
	// them for a dead owner's unreplayed frame would seed the replay
	// destination's dedupe index with keys whose rows exist nowhere yet,
	// and the replay itself would then flatten to duplicates and lose
	// the rows.
	// routerGate tracks the first-write check per router (see gateRouter):
	// each router's first keyed write since process start blocks until
	// this node has pulled that router's applied keys from its live
	// peers, so a write applied elsewhere while ownership was in flux is
	// recognized as a duplicate rather than re-applied.
	routerGate map[string]chan struct{}

	gsp *gossiper

	// xferMu serializes extract-and-send transfer sessions (a drain and
	// an inbound transfer request must not interleave extracts).
	xferMu   sync.Mutex
	xferSess atomic.Uint64
	draining atomic.Bool

	mJournalFrames *telemetry.Counter
	gJournalBytes  *telemetry.Gauge
	mReplayed      *telemetry.Counter
	mReplayRows    *telemetry.Counter
	mXferRows      *telemetry.Counter
	mXferKeys      *telemetry.Counter
	gEpoch         *telemetry.Gauge

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

type journalEntry struct {
	owner string
	succs []string
	items int
	batch []byte
	// ownerInc is the owner's incarnation when the frame was journaled
	// (0 if the owner was unknown then). A later incarnation means the
	// owner restarted — its in-memory store died with the old life, so
	// the frame's rows exist only in journals and must replay even
	// though the owner looks alive again.
	ownerInc uint64
	// succIncs mirrors succs with each successor's incarnation at
	// journal time (0 if unknown). The first-live-successor walk skips
	// a successor whose incarnation changed: its journal died with its
	// previous life, so it cannot replay the frame it "holds".
	succIncs []uint64
	// keys are the frame's keyed items per router, recorded at journal
	// time so manifests can serve (or withhold) them per frame.
	keys     map[string][]string
	replayed bool
}

// ownerHoldsRows reports whether the frame's rows are still believed to
// live at the journaled owner: the owner is not judged dead and has not
// been reborn under a new incarnation. Mirrors the replayScan verdict.
func (e *journalEntry) ownerHoldsRows(state map[string]State, incs map[string]uint64) bool {
	st, known := state[e.owner]
	if known && st == StateDead {
		return false
	}
	if e.ownerInc != 0 && known && incs[e.owner] != e.ownerInc {
		return false
	}
	return true
}

// NewNode starts a cluster node: collector listeners, control-plane
// listener, a learn-only join against the seed peers, the key-manifest
// pull that seeds its dedupe index (so retries of writes applied during
// a previous life or a dead window are recognized as duplicates), and
// the gossip loop. The node is invisible to peers until the manifests
// are seeded — it never takes a write it could mistake for new.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	cfg.Gossip = cfg.Gossip.withDefaults()
	srv, err := collector.NewServer(cfg.UDPAddr, cfg.HTTPAddr, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.ID, err)
	}
	if cfg.MaxInflight > 0 {
		srv.SetMaxInflight(cfg.MaxInflight)
	}
	ln, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("cluster: node %s: control listen: %w", cfg.ID, err)
	}
	reg := telemetry.Default
	n := &Node{
		cfg:         cfg,
		srv:         srv,
		log:         slog.Default().With("component", "cluster-node", "node", cfg.ID),
		ctrlLn:      ln,
		httpc:       &http.Client{},
		journalSeen: make(map[uint64]bool),
		ownerKeys:   make(map[string]map[string]bool),
		routerGate:  make(map[string]chan struct{}),
		mJournalFrames: reg.CounterVec("natpeek_cluster_journal_frames_total",
			"Replicate frames journaled as a successor, per node.", "node").With(cfg.ID),
		gJournalBytes: reg.GaugeVec("natpeek_cluster_journal_bytes",
			"Raw NPB1 bytes held in the replication journal, per node.", "node").With(cfg.ID),
		mReplayed: reg.CounterVec("natpeek_cluster_replayed_frames_total",
			"Journaled frames replayed after an owner died, per node.", "node").With(cfg.ID),
		mReplayRows: reg.CounterVec("natpeek_cluster_replayed_items_total",
			"Batch items applied by failover replays, per node.", "node").With(cfg.ID),
		mXferRows: reg.CounterVec("natpeek_cluster_transfer_rows_total",
			"Rows streamed to new owners by planned rebalancing, per node.", "node").With(cfg.ID),
		mXferKeys: reg.CounterVec("natpeek_cluster_transfer_keys_total",
			"Idempotency keys pushed to new owners by planned rebalancing, per node.", "node").With(cfg.ID),
		gEpoch: reg.GaugeVec("natpeek_cluster_ring_epoch",
			"Highest ring-epoch version this node has seen, per node.", "node").With(cfg.ID),
		stop: make(chan struct{}),
	}
	// Incarnation is the start instant: any restart of the same ID
	// supersedes its previous life in every peer's member table.
	n.ms = newMembership(Member{
		ID: cfg.ID, Role: RoleNode,
		CtrlAddr:    ln.Addr().String(),
		DataAddr:    srv.HTTPAddr(),
		Incarnation: uint64(time.Now().UnixNano()),
		Joining:     cfg.Joining,
	}, cfg.Gossip)
	n.gsp = newGossiper(cfg.ID, n.ms, n.httpc, cfg.Peers, n.log)

	srv.SetIngestObserver(n.observeIngest)
	srv.SetIngestGate(n.gateRouter)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/gossip", n.handleGossip)
	mux.HandleFunc("POST /cluster/replicate", n.handleReplicate)
	mux.HandleFunc("POST /cluster/manifest", n.handleManifest)
	mux.HandleFunc("POST /cluster/transfer", n.handleTransfer)
	mux.HandleFunc("POST /cluster/transferkeys", n.handleTransferKeys)
	mux.HandleFunc("POST /cluster/drain", n.handleDrain)
	mux.HandleFunc("GET /cluster/members", n.handleMembers)
	mux.HandleFunc("GET /cluster/epoch", n.handleEpoch)
	n.ctrl = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go n.ctrl.Serve(ln)

	n.join()
	n.wg.Add(1)
	go n.gossipLoop()
	n.log.Debug("node up", "data", n.DataAddr(), "ctrl", n.CtrlAddr())
	return n, nil
}

// ID returns the node's ring identity.
func (n *Node) ID() string { return n.cfg.ID }

// DataAddr is the wrapped collector's HTTP address.
func (n *Node) DataAddr() string { return n.srv.HTTPAddr() }

// CtrlAddr is the control-plane HTTP address.
func (n *Node) CtrlAddr() string { return n.ctrlLn.Addr().String() }

// UDPAddr is the wrapped collector's heartbeat address.
func (n *Node) UDPAddr() string { return n.srv.UDPAddr() }

// Collector exposes the wrapped server (tests, stats).
func (n *Node) Collector() *collector.Server { return n.srv }

// Store returns a merged snapshot of this node's shard of the data.
func (n *Node) Store() *dataset.Store { return n.srv.Store() }

// View returns the node's judged membership.
func (n *Node) View() []MemberView { return n.ms.view() }

// JournalStats reports the replication journal's size: frames held,
// raw NPB1 bytes, and how many frames have been replayed by failover.
func (n *Node) JournalStats() (frames, bytes, replayed int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range n.journal {
		frames++
		bytes += len(e.batch)
		if e.replayed {
			replayed++
		}
	}
	return
}

// Close shuts the node down gracefully (drains in-flight uploads).
func (n *Node) Close() error { return n.shutdown(true) }

// Kill force-closes everything immediately — the chaos harness's
// process crash. In-flight uploads drop mid-request, the journal and
// store die with the process (the test discards the Node), and peers
// find out the hard way, via the failure detector.
func (n *Node) Kill() error { return n.shutdown(false) }

func (n *Node) shutdown(graceful bool) error {
	n.closeMu.Lock()
	if n.closed {
		n.closeMu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.closeMu.Unlock()

	var err error
	if graceful {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err = n.ctrl.Shutdown(ctx)
		cancel()
		if cerr := n.srv.Close(); err == nil {
			err = cerr
		}
	} else {
		err = n.ctrl.Close()
		if cerr := n.srv.Abort(); err == nil {
			err = cerr
		}
	}
	n.wg.Wait()
	return err
}

// observeIngest runs on the collector's ingest path for every keyed
// decision and records applied keys per router. Only the map insert is
// under the node lock; manifests read the same index.
func (n *Node) observeIngest(_, key, router string, applied bool) {
	if key == "" || !applied {
		return
	}
	n.mu.Lock()
	ks := n.ownerKeys[router]
	if ks == nil {
		ks = make(map[string]bool)
		n.ownerKeys[router] = ks
	}
	ks[key] = true
	n.mu.Unlock()
}

// gateRouter runs before every keyed apply (the collector's ingest
// gate) and blocks a router's first keyed write since process start
// until this node has pulled the router's applied keys from its live
// peers. This closes the duplicate window the join-time bulk pull
// cannot: a batch partially applied at an interim owner while this
// node's ownership was in flux, then retried here after routing
// flipped. The interim apply necessarily precedes the routing flip,
// which precedes the first write arriving here — so a pull at first
// write always observes it. Later writes for the router pass straight
// through; the whole check costs one targeted manifest RPC per router
// per process lifetime.
func (n *Node) gateRouter(router string) {
	n.mu.Lock()
	done, ok := n.routerGate[router]
	if ok {
		n.mu.Unlock()
		<-done
		return
	}
	done = make(chan struct{})
	n.routerGate[router] = done
	n.mu.Unlock()
	n.seedRouterKeys(router)
	close(done)
}

// seedRouterKeys pulls one router's applied-or-journaled keys from
// every live peer node and seeds the local dedupe index. Best effort
// per peer: a peer that cannot answer is skipped (its copy of an acked
// write is also in a journal, and an unacked write will be retried by
// the client either way).
func (n *Node) seedRouterKeys(router string) {
	var donors []Member
	for _, mv := range n.ms.view() {
		if mv.Role == RoleNode && mv.State != StateDead && mv.ID != n.cfg.ID {
			donors = append(donors, mv.Member)
		}
	}
	store := n.srv.Sharded()
	for _, donor := range donors {
		m, err := postCtrl(n.httpc, donor.CtrlAddr, "/cluster/manifest", &Message{
			Kind:        MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: n.cfg.ID, Routers: []string{router}},
		}, 5*time.Second)
		if err != nil || m.Kind != MsgManifestResponse {
			n.log.Warn("first-write key pull failed", "router", router, "peer", donor.ID, "err", err)
			continue
		}
		for _, en := range m.ManifestResp.Entries {
			for _, k := range en.Keys {
				store.Apply(en.Router, k, func(*dataset.Store) {})
			}
		}
	}
}

// join runs the three-step entry protocol: learn the membership from
// seed peers (without revealing ourselves), pull applied-key manifests
// for every router we would own, and seed the dedupe index. Peers that
// are down are skipped — a manifest is a dedupe optimization against
// ack-lost retries, and the writes themselves are safe either way.
func (n *Node) join() {
	n.gsp.learn()

	// Prospective membership: everyone alive now, plus us.
	var prospective []Member
	var donors []Member
	for _, mv := range n.ms.view() {
		if mv.State == StateDead || mv.ID == n.cfg.ID {
			continue
		}
		if mv.Role == RoleNode {
			prospective = append(prospective, mv.Member)
			donors = append(donors, mv.Member)
		}
	}
	self, _ := n.ms.lookup(n.cfg.ID)
	prospective = append(prospective, self)

	seeded := 0
	for _, donor := range donors {
		m, err := postCtrl(n.httpc, donor.CtrlAddr, "/cluster/manifest", &Message{
			Kind:        MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: n.cfg.ID, Members: prospective},
		}, 30*time.Second)
		if err != nil || m.Kind != MsgManifestResponse {
			n.log.Warn("join: manifest pull failed", "peer", donor.ID, "err", err)
			continue
		}
		store := n.srv.Sharded()
		for _, en := range m.ManifestResp.Entries {
			for _, k := range en.Keys {
				// A no-op apply marks the key applied without adding rows.
				store.Apply(en.Router, k, func(*dataset.Store) {})
				seeded++
			}
		}
	}
	if seeded > 0 {
		n.log.Info("join: seeded dedupe index", "keys", seeded)
	}
}

// gossipLoop is the node's heartbeat: bump our beat, exchange tables
// with a random live peer, and scan the journal for frames orphaned by
// a dead owner.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Gossip.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.gsp.once()
		n.replayScan()
	}
}

// replayScan finds journaled frames whose owner lost its store — it is
// judged dead, or it came back under a new incarnation (a restart wipes
// the in-memory store, so "alive again" does not mean the rows are) —
// and, when this node is the frame's first live successor, replays the
// raw NPB1 bytes into its own collector as a /v1/batch POST. The scan
// runs every tick, so a replay that fails (or an owner that dies later)
// is retried until it lands; idempotency keys make every retry converge
// to exactly-once rows. Frames journaled before the owner was known
// (ownerInc 0) only replay on death, never on an incarnation change —
// a spurious rebirth replay of rows the owner still holds would
// double-count them cluster-wide.
func (n *Node) replayScan() {
	state := make(map[string]State)
	incs := make(map[string]uint64)
	for _, mv := range n.ms.view() {
		state[mv.ID] = mv.State
		incs[mv.ID] = mv.Incarnation
	}
	n.mu.Lock()
	var due []*journalEntry
	for _, e := range n.journal {
		if e.replayed {
			continue
		}
		st, known := state[e.owner]
		ownerLost := known && st == StateDead
		if !ownerLost && e.ownerInc != 0 && known && incs[e.owner] != e.ownerInc {
			ownerLost = true
		}
		if !ownerLost {
			continue
		}
		// First successor still standing inherits the frame. A
		// successor that is dead — or reborn under a new incarnation,
		// meaning its journal died with its previous life — cannot
		// replay and is skipped. Everyone holding the frame runs the
		// same rule, so exactly one live node replays it (disagreeing
		// views would only add replays, which dedupe flattens).
		for i, s := range e.succs {
			if state[s] == StateDead {
				continue
			}
			if i < len(e.succIncs) && e.succIncs[i] != 0 && incs[s] != e.succIncs[i] {
				continue
			}
			if s == n.cfg.ID {
				due = append(due, e)
			}
			break
		}
	}
	n.mu.Unlock()

	for _, e := range due {
		res, err := n.replay(e)
		if err != nil {
			n.log.Warn("failover replay failed, will retry", "owner", e.owner, "err", err)
			continue
		}
		n.mu.Lock()
		e.replayed = true
		n.mu.Unlock()
		n.mReplayed.Inc()
		n.mReplayRows.Add(int64(res.Applied))
		n.log.Info("replayed orphaned frame", "owner", e.owner, "items", e.items,
			"applied", res.Applied, "duplicates", res.Duplicates)
	}
}

// replay routes a journaled frame's items into the data plane of each
// item's CURRENT ring owner — the handoff IS a normal binary batch
// upload, so admission control, dedupe, tracing, and telemetry all
// apply unchanged. Routing at replay time (rather than blindly into
// this node) matters once the ring can change shape: after a drain
// moved a dead owner's routers, their history — and crucially their
// dedupe keys — lives at the new owner, and a replay applied anywhere
// else would re-create rows the cluster already acknowledged. Items
// whose owner is unknown, or an empty ring, fall back to this node's
// own data plane, which reproduces the pre-rebalance behavior exactly.
func (n *Node) replay(e *journalEntry) (collector.BatchResult, error) {
	var total collector.BatchResult
	groups := map[string][]byte{}
	items, err := decodeBatchItems(wire.ContentTypeBinary, e.batch)
	if err != nil {
		return total, err
	}
	if ring := n.ms.ring(); ring.Len() > 0 {
		byAddr := make(map[string][]wire.Item)
		for _, it := range items {
			addr := n.DataAddr()
			if owner := ring.Owner(routerOfItem(&it)); owner != "" && owner != n.cfg.ID {
				if mem, ok := n.ms.lookup(owner); ok && mem.DataAddr != "" {
					addr = mem.DataAddr
				}
			}
			byAddr[addr] = append(byAddr[addr], it)
		}
		for addr, its := range byAddr {
			groups[addr] = wire.AppendBatch(nil, its)
		}
	} else {
		groups[n.DataAddr()] = e.batch
	}
	for addr, batch := range groups {
		res, err := postBatchBinary(n.httpc, addr, batch)
		if err != nil {
			return total, err
		}
		total.Applied += res.Applied
		total.Duplicates += res.Duplicates
		total.Rejected += res.Rejected
		total.Failed = append(total.Failed, res.Failed...)
	}
	return total, nil
}

// postBatchBinary POSTs one NPB1 batch to a data plane and decodes the
// BatchResult. Shared by failover replay and the transfer engine.
func postBatchBinary(httpc *http.Client, dataAddr string, batch []byte) (collector.BatchResult, error) {
	var res collector.BatchResult
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+dataAddr+"/v1/batch", bytes.NewReader(batch))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	resp, err := httpc.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return res, err
	}
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("batch post: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	err = json.Unmarshal(body, &res)
	return res, err
}

func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgGossip)
	if !ok {
		return
	}
	n.ms.merge(m.Gossip.Members)
	n.ms.mergeEpochs(m.Gossip.Cur, m.Gossip.Next)
	cur, next := n.ms.epochs()
	n.gEpoch.Set(float64(maxEpochVersion(cur, next)))
	n.writeCtrl(w, &Message{Kind: MsgGossip,
		Gossip: &Gossip{From: n.cfg.ID, Members: n.ms.snapshot(), Cur: cur, Next: next}})
}

func maxEpochVersion(cur, next *RingEpoch) uint64 {
	v := uint64(0)
	if cur != nil {
		v = cur.Version
	}
	if next != nil && next.Version > v {
		v = next.Version
	}
	return v
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgReplicate)
	if !ok {
		return
	}
	rep := m.Replicate
	// Validate before journaling: bytes that cannot replay are refused
	// now, while the front can still fail the client's request.
	items, frameKeys, err := scanBatch(rep.Batch)
	if err != nil {
		http.Error(w, "replicate: bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	var ownerInc uint64
	if owner, ok := n.ms.lookup(rep.Owner); ok {
		ownerInc = owner.Incarnation
	}
	succIncs := make([]uint64, len(rep.Successors))
	for i, s := range rep.Successors {
		if mem, ok := n.ms.lookup(s); ok {
			succIncs[i] = mem.Incarnation
		}
	}
	h := hash64(rep.Batch)
	n.mu.Lock()
	if !n.journalSeen[h] {
		n.journalSeen[h] = true
		n.journal = append(n.journal, &journalEntry{
			owner: rep.Owner, succs: rep.Successors, items: items, batch: rep.Batch,
			ownerInc: ownerInc, succIncs: succIncs, keys: frameKeys,
		})
		n.mJournalFrames.Inc()
		n.gJournalBytes.Add(float64(len(rep.Batch)))
	}
	n.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleManifest(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgManifestRequest)
	if !ok {
		return
	}
	req := m.ManifestReq
	resp := &ManifestResponse{From: n.cfg.ID}
	state := make(map[string]State)
	incs := make(map[string]uint64)
	for _, mv := range n.ms.view() {
		state[mv.ID] = mv.State
		incs[mv.ID] = mv.Incarnation
	}
	n.mu.Lock()
	// A manifest entry is the union of keys this node applied and keys
	// inside frames it journaled: a journaled key was acked by an owner
	// whose store may since have died, and serving both lets a reborn
	// owner dedupe a client retry even when it races the replay. One
	// carve-out: a frame whose owner is LOST and whose replay has not
	// happened yet is withheld — its rows exist nowhere right now, and
	// seeding its keys into the node the replay will route to would make
	// that replay flatten to duplicates and lose the rows for good.
	journaled := make(map[string]map[string]bool)
	for _, e := range n.journal {
		if !e.replayed && !e.ownerHoldsRows(state, incs) {
			continue
		}
		for router, keys := range e.keys {
			idx := journaled[router]
			if idx == nil {
				idx = make(map[string]bool)
				journaled[router] = idx
			}
			for _, k := range keys {
				idx[k] = true
			}
		}
	}
	keyUnion := func(router string) []string {
		applied, jkeys := n.ownerKeys[router], journaled[router]
		if len(applied) == 0 && len(jkeys) == 0 {
			return nil
		}
		out := make([]string, 0, len(applied)+len(jkeys))
		for k := range applied {
			out = append(out, k)
		}
		for k := range jkeys {
			if !applied[k] {
				out = append(out, k)
			}
		}
		return out
	}
	if len(req.Routers) > 0 {
		// Targeted query: exactly these routers, ownership ignored.
		for _, router := range req.Routers {
			if keys := keyUnion(router); len(keys) > 0 {
				resp.Entries = append(resp.Entries, ManifestEntry{Router: router, Keys: keys})
			}
		}
	} else {
		// Join-time bulk pull: every router the joiner would own under
		// the prospective membership.
		var ids []string
		for _, mem := range req.Members {
			if mem.Role == RoleNode {
				ids = append(ids, mem.ID)
			}
		}
		ring := NewRing(ids, DefaultVnodes)
		routers := make(map[string]bool, len(n.ownerKeys)+len(journaled))
		for router := range n.ownerKeys {
			routers[router] = true
		}
		for router := range journaled {
			routers[router] = true
		}
		for router := range routers {
			if ring.Owner(router) != req.Joiner {
				continue
			}
			if keys := keyUnion(router); len(keys) > 0 {
				resp.Entries = append(resp.Entries, ManifestEntry{Router: router, Keys: keys})
			}
		}
	}
	n.mu.Unlock()
	n.writeCtrl(w, &Message{Kind: MsgManifestResponse, ManifestResp: resp})
}

func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	writeMembersJSON(w, n.ms.view())
}

// readCtrl decodes one NPC1 request of the expected kind.
func (n *Node) readCtrl(w http.ResponseWriter, r *http.Request, want MsgKind) (*Message, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, ctrlMaxBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	m, err := DecodeMessage(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if m.Kind != want {
		http.Error(w, fmt.Sprintf("cluster: want message kind %d, got %d", want, m.Kind), http.StatusBadRequest)
		return nil, false
	}
	return m, true
}

func (n *Node) writeCtrl(w http.ResponseWriter, m *Message) {
	w.Header().Set("Content-Type", ctrlContentType)
	w.Write(AppendMessage(nil, m))
}

// scanBatch walks an NPB1 buffer and returns its item count plus the
// router→keys index of its keyed items, erroring on anything the
// collector would refuse to decode.
func scanBatch(batch []byte) (int, map[string][]string, error) {
	var dec wire.Decoder
	if err := dec.Reset(batch); err != nil {
		return 0, nil, err
	}
	items := 0
	var keys map[string][]string
	var it wire.Item
	for {
		err := dec.Next(&it)
		if err == io.EOF {
			return items, keys, nil
		}
		if err != nil {
			return 0, nil, err
		}
		items++
		if it.Key != "" {
			if keys == nil {
				keys = make(map[string][]string)
			}
			router := routerOfItem(&it)
			keys[router] = append(keys[router], it.Key)
		}
	}
}

// memberViewJSON is the ops-facing /cluster/members entry.
type memberViewJSON struct {
	ID          string `json:"id"`
	Role        string `json:"role"`
	State       string `json:"state"`
	CtrlAddr    string `json:"ctrl_addr"`
	DataAddr    string `json:"data_addr"`
	Incarnation uint64 `json:"incarnation"`
	Beat        uint64 `json:"beat"`
}

func writeMembersJSON(w http.ResponseWriter, view []MemberView) {
	out := make([]memberViewJSON, 0, len(view))
	for _, mv := range view {
		out = append(out, memberViewJSON{
			ID: mv.ID, Role: mv.Role.String(), State: mv.State.String(),
			CtrlAddr: mv.CtrlAddr, DataAddr: mv.DataAddr,
			Incarnation: mv.Incarnation, Beat: mv.Beat,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
