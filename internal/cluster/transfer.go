package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/wire"
)

// Planned ownership transfer. Failover (node.go) hands off the
// journaled tail when a node dies; this file hands off a node's FULL
// owned row set when the ring changes shape on purpose — scale-out
// (JoinRing) and scale-in (Drain). The protocol:
//
//  1. The coordinator proposes a RingEpoch with the new composition and
//     broadcasts it. Every front that learns the pending epoch starts
//     fencing writes whose ownership is about to move (429 +
//     Retry-After, never dropped).
//  2. waitEpochVisible blocks until every live member — fronts
//     included — reports the proposal's version. From here, no write
//     for a moving shard can land anywhere.
//  3. Sources run extract-and-send sessions: atomically extract the
//     moving routers' rows from the store (dedupe keys are retained at
//     the source), re-encode them as NPB1 batches keyed
//     "<router>:xfer:<src>:<session>:<kind>:<i>", and POST them through
//     the new owner's own data plane — admission control, dedupe, and
//     telemetry apply unchanged, and a re-sent chunk flattens to
//     duplicates. The moved routers' idempotency keys are pushed
//     alongside (MsgTransferKeys) so late client retries dedupe at the
//     new owner even after the source is gone.
//  4. Sessions repeat until one moves zero rows, then the coordinator
//     commits the epoch and broadcasts again; fronts route by the new
//     ring and stop fencing.
const (
	// transferBatchItems caps items per transfer batch POST.
	transferBatchItems = 256
	// transferRunRows caps rows per slice-carrying transfer item.
	transferRunRows = 128
	// transferKeysPerMsg caps keys per MsgTransferKeys push.
	transferKeysPerMsg = 2048
)

// Transfer-key kind discriminators (the "<kind>" field of an xfer
// idempotency key). Distinct per row set so per-(router,kind) indices
// never collide.
const (
	xfkRegister = iota
	xfkUptime
	xfkCapacity
	xfkCount
	xfkSightings
	xfkWiFi
	xfkFlows
	xfkThroughput
)

// JoinRing adds this node to the routing ring: propose an epoch over
// the current composition plus self, fence, pull ownership from every
// peer in transfer rounds until an entire round moves nothing, then
// commit. The node must have been started with NodeConfig.Joining so
// the legacy membership ring never routed to it early.
func (n *Node) JoinRing(ctx context.Context) error {
	// One synchronous exchange with every known peer before planning:
	// peers relay their full member tables, so a composition computed
	// moments after process start cannot silently omit a live node this
	// process has not gossiped about yet.
	n.gsp.broadcast()
	base := n.ms.planningNodes()
	for _, id := range base {
		if id == n.cfg.ID {
			// Already a ring member (e.g. a retried join after the
			// commit landed): nothing to transfer.
			n.ms.setJoining(false)
			return nil
		}
	}
	next := n.ms.proposeEpoch(append(base, n.cfg.ID))
	n.log.Info("join: proposed ring epoch", "version", next.Version, "nodes", next.Nodes)
	n.gsp.broadcast()
	if err := n.waitEpochVisible(ctx, next.Version); err != nil {
		return err
	}
	for round := 1; ; round++ {
		var moved uint64
		for _, src := range next.Nodes {
			if src == n.cfg.ID {
				continue
			}
			rows, err := n.requestTransfer(ctx, src, next)
			if err != nil {
				return fmt.Errorf("cluster: join: transfer from %s: %w", src, err)
			}
			moved += rows
		}
		n.log.Info("join: transfer round", "round", round, "rows", moved)
		if moved == 0 {
			break
		}
	}
	committed, ok := n.ms.commitEpoch(next.Version)
	if !ok {
		return fmt.Errorf("cluster: join: epoch %d superseded before commit", next.Version)
	}
	n.ms.setJoining(false)
	n.gsp.broadcast()
	n.gEpoch.Set(float64(committed.Version))
	n.log.Info("join: ring epoch committed", "version", committed.Version, "nodes", committed.Nodes)
	return nil
}

// Drain removes this node from the routing ring: propose the current
// composition minus self, fence, stream everything this node holds to
// the surviving owners, re-home the replication-journal frames it holds
// as a successor, then commit. After Drain returns nil the node owns
// nothing and the process can be stopped.
func (n *Node) Drain(ctx context.Context) error {
	if !n.draining.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: drain already in progress")
	}
	done := false
	defer func() {
		if !done {
			n.draining.Store(false) // a failed drain may be retried
		}
	}()
	// As in JoinRing: refresh the member table from every known peer
	// before planning, so a drain issued right after start (or relayed
	// by a front that knows more of the cluster than this node yet
	// does) cannot propose a composition missing a live node — that
	// would evict the unplanned node's ownership without a transfer.
	n.gsp.broadcast()
	base := n.ms.planningNodes()
	var remaining []string
	inRing := false
	for _, id := range base {
		if id == n.cfg.ID {
			inRing = true
			continue
		}
		remaining = append(remaining, id)
	}
	if !inRing {
		done = true
		return nil
	}
	if len(remaining) == 0 {
		return fmt.Errorf("cluster: cannot drain the last ring node")
	}
	next := n.ms.proposeEpoch(remaining)
	n.log.Info("drain: proposed ring epoch", "version", next.Version, "nodes", next.Nodes)
	n.gsp.broadcast()
	if err := n.waitEpochVisible(ctx, next.Version); err != nil {
		return err
	}
	moved, err := n.rebalanceLoop(ctx, next)
	if err != nil {
		return err
	}
	if err := n.rehomeJournal(ctx, next); err != nil {
		return err
	}
	committed, ok := n.ms.commitEpoch(next.Version)
	if !ok {
		return fmt.Errorf("cluster: drain: epoch %d superseded before commit", next.Version)
	}
	n.gsp.broadcast()
	n.gEpoch.Set(float64(committed.Version))
	// Post-commit sweep: anything that landed here during the cutover
	// (a failover replay racing the fence, a straggling direct POST)
	// moves out before the operator stops the process.
	if swept, err := n.rebalanceLoop(ctx, committed); err != nil {
		n.log.Warn("drain: post-commit sweep incomplete", "err", err)
	} else {
		moved += swept
	}
	done = true
	n.log.Info("drained", "epoch", committed.Version, "rows", moved)
	return nil
}

// waitEpochVisible blocks until every live member's gossiped
// EpochVersion has reached version — the cluster-wide fence barrier.
// Broadcasting between polls pushes the epoch instead of waiting for
// random-pair gossip to percolate it.
func (n *Node) waitEpochVisible(ctx context.Context, version uint64) error {
	for {
		lagging := ""
		for _, mv := range n.ms.view() {
			if mv.State != StateDead && mv.EpochVersion < version {
				lagging = mv.ID
				break
			}
		}
		if lagging == "" {
			return nil
		}
		n.gsp.broadcast()
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: epoch %d not visible at %s: %w", version, lagging, ctx.Err())
		case <-time.After(n.cfg.Gossip.Interval):
		}
	}
}

// requestTransfer asks one source node to run its transfer sessions for
// the proposed epoch and reports how many rows it moved. Retries until
// ctx expires — a source mid-session answers when its lock frees.
func (n *Node) requestTransfer(ctx context.Context, src string, e *RingEpoch) (uint64, error) {
	for {
		if mem, ok := n.ms.lookup(src); ok && mem.CtrlAddr != "" {
			m, err := postCtrl(n.httpc, mem.CtrlAddr, "/cluster/transfer", &Message{
				Kind:        MsgTransferRequest,
				TransferReq: &TransferRequest{From: n.cfg.ID, Epoch: e},
			}, 2*time.Minute)
			if err == nil && m != nil && m.Kind == MsgTransferResponse {
				return m.TransferResp.Rows, nil
			}
			if err == nil {
				err = fmt.Errorf("unexpected transfer reply")
			}
			n.log.Warn("transfer request failed, retrying", "src", src, "err", err)
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("cluster: transfer request to %s: %w", src, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// rebalanceLoop runs extract-and-send sessions against the epoch's ring
// until one moves zero rows. Rows that arrive after the zero session
// stay put for the caller's next pass (the commit-then-sweep in Drain,
// or the next transfer round in JoinRing).
func (n *Node) rebalanceLoop(ctx context.Context, e *RingEpoch) (uint64, error) {
	var total uint64
	for {
		moved, err := n.rebalanceOnce(ctx, e)
		if err != nil {
			return total, err
		}
		total += moved
		if moved == 0 {
			return total, nil
		}
		select {
		case <-ctx.Done():
			return total, ctx.Err()
		default:
		}
	}
}

// rebalanceOnce is one transfer session: atomically extract every row
// the epoch's ring assigns to someone else, stream the rows to their
// new owners through those owners' data planes, and push the moved
// routers' idempotency keys. Returns the extracted row count (the
// loop's termination signal).
//
// Failure handling is asymmetric on purpose. A chunk that cannot be
// delivered is restored into the local store — along with every chunk
// after it — so rows are never stranded in memory; chunks already
// acknowledged stay moved (they live at the destination, and their xfer
// keys make any later re-send flatten to duplicates). A key push that
// fails aborts the session WITHOUT restoring rows: the rows are safely
// at their new owner, and retrying the session re-pushes the keys
// (extraction returns a router's keys for as long as the source
// remembers them, rows or no rows).
func (n *Node) rebalanceOnce(ctx context.Context, e *RingEpoch) (uint64, error) {
	n.xferMu.Lock()
	defer n.xferMu.Unlock()

	ring := NewRing(e.Nodes, DefaultVnodes)
	if ring.Len() == 0 {
		return 0, nil
	}
	// Resolve every possible destination before extracting anything: a
	// destination we cannot address would strand rows outside the store.
	dests := make(map[string]Member)
	for _, id := range e.Nodes {
		if id == n.cfg.ID {
			continue
		}
		mem, ok := n.ms.lookup(id)
		if !ok || mem.DataAddr == "" || mem.CtrlAddr == "" {
			return 0, fmt.Errorf("cluster: transfer destination %s unknown", id)
		}
		dests[id] = mem
	}
	rs, ok := n.srv.Sharded().(dataset.RebalanceStore)
	if !ok {
		return 0, fmt.Errorf("cluster: store does not support rebalancing")
	}
	match := func(router string) bool {
		o := ring.Owner(router)
		return o != "" && o != n.cfg.ID
	}
	sess := n.xferSess.Add(1)
	moved, keys := rs.ExtractRouters(match)
	rows := storeRows(moved)
	if rows > 0 || len(moved.RouterCountry) > 0 {
		chunks := transferChunks(n.cfg.ID, sess, moved, ring, dests)
		if failed, err := n.sendChunks(ctx, chunks); err != nil {
			n.restoreItems(failed)
			return 0, err
		}
		n.mXferRows.Add(int64(rows))
	}
	if err := n.pushKeys(ctx, ring, dests, keys); err != nil {
		return 0, err
	}
	return uint64(rows), nil
}

// storeRows counts a snapshot's rows across every data set.
func storeRows(st *dataset.Store) int {
	return len(st.Uptime) + len(st.Capacity) + len(st.Counts) + len(st.Sightings) +
		len(st.WiFi) + len(st.Flows) + len(st.Throughput)
}

// xferChunk is one transfer batch POST: a destination data address and
// the items going there.
type xferChunk struct {
	addr  string
	items []wire.Item
}

// transferChunks re-encodes an extracted snapshot as per-destination
// NPB1 batches. Every item carries a deterministic xfer idempotency key
// (so redelivery dedupes) and rows stay in extraction order within each
// destination. Roster entries travel first as /v1/register items so the
// destination knows a router before its rows. Device sightings ride as
// JSON censusUpload bodies without a count row — a typed KindDevices
// item cannot carry sightings alone, and counts and sightings moved
// independently cannot be re-paired.
func transferChunks(src string, sess uint64, moved *dataset.Store, ring *Ring, dests map[string]Member) []xferChunk {
	byOwner := make(map[string][]wire.Item)
	idx := make(map[string]int)
	add := func(router string, kind int, endpoint string, p wire.Payload) {
		owner := ring.Owner(router)
		ik := fmt.Sprintf("%s\x00%d", router, kind)
		key := fmt.Sprintf("%s:xfer:%s:%d:%d:%d", router, src, sess, kind, idx[ik])
		idx[ik]++
		byOwner[owner] = append(byOwner[owner], wire.Item{Endpoint: endpoint, Key: key, Payload: p})
	}

	routers := make([]string, 0, len(moved.RouterCountry))
	for id := range moved.RouterCountry {
		routers = append(routers, id)
	}
	sort.Strings(routers)
	for _, id := range routers {
		body, _ := json.Marshal(struct {
			RouterID string `json:"router_id"`
			Country  string `json:"country,omitempty"`
		}{id, moved.RouterCountry[id]})
		add(id, xfkRegister, "/v1/register", wire.Payload{Kind: wire.KindRaw, Raw: body})
	}
	for _, row := range moved.Uptime {
		add(row.RouterID, xfkUptime, "/v1/uptime", wire.Payload{Kind: wire.KindUptime, Uptime: row})
	}
	for _, row := range moved.Capacity {
		add(row.RouterID, xfkCapacity, "/v1/capacity", wire.Payload{Kind: wire.KindCapacity, Capacity: row})
	}
	for _, row := range moved.Counts {
		add(row.RouterID, xfkCount, "/v1/devices", wire.Payload{Kind: wire.KindDevices, Count: row})
	}
	runs(moved.Sightings, func(r dataset.DeviceSighting) string { return r.RouterID }, func(router string, run []dataset.DeviceSighting) {
		body, _ := json.Marshal(struct {
			Sightings []dataset.DeviceSighting `json:"sightings"`
		}{run})
		add(router, xfkSightings, "/v1/devices", wire.Payload{Kind: wire.KindRaw, Raw: body})
	})
	runs(moved.WiFi, func(r dataset.WiFiScan) string { return r.RouterID }, func(router string, run []dataset.WiFiScan) {
		add(router, xfkWiFi, "/v1/wifi", wire.Payload{Kind: wire.KindWiFi, WiFi: run})
	})
	runs(moved.Flows, func(r dataset.FlowRecord) string { return r.RouterID }, func(router string, run []dataset.FlowRecord) {
		add(router, xfkFlows, "/v1/traffic/flows", wire.Payload{Kind: wire.KindFlows, Flows: run})
	})
	runs(moved.Throughput, func(r dataset.ThroughputSample) string { return r.RouterID }, func(router string, run []dataset.ThroughputSample) {
		add(router, xfkThroughput, "/v1/traffic/throughput", wire.Payload{Kind: wire.KindThroughput, Throughput: run})
	})

	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	var chunks []xferChunk
	for _, o := range owners {
		items := byOwner[o]
		addr := dests[o].DataAddr
		for len(items) > 0 {
			nn := len(items)
			if nn > transferBatchItems {
				nn = transferBatchItems
			}
			chunks = append(chunks, xferChunk{addr: addr, items: items[:nn]})
			items = items[nn:]
		}
	}
	return chunks
}

// runs invokes emit for maximal consecutive same-router row runs,
// capped at transferRunRows rows each.
func runs[T any](rows []T, router func(T) string, emit func(router string, run []T)) {
	start := 0
	for i := 1; i <= len(rows); i++ {
		if i == len(rows) || router(rows[i]) != router(rows[start]) || i-start >= transferRunRows {
			emit(router(rows[start]), rows[start:i])
			start = i
		}
	}
}

// sendChunks delivers transfer chunks in order, retrying each until ctx
// expires. On giving up it returns every item not yet acknowledged so
// the caller can restore them; delivered chunks are final.
func (n *Node) sendChunks(ctx context.Context, chunks []xferChunk) ([]wire.Item, error) {
	for i, ch := range chunks {
		if err := n.postChunk(ctx, ch); err != nil {
			var rest []wire.Item
			for _, c := range chunks[i:] {
				rest = append(rest, c.items...)
			}
			return rest, err
		}
	}
	return nil, nil
}

// postChunk POSTs one transfer batch with backoff until ctx expires
// (the destination's admission control may 429 under load; the xfer
// keys make every retry idempotent).
func (n *Node) postChunk(ctx context.Context, ch xferChunk) error {
	batch := wire.AppendBatch(nil, ch.items)
	backoff := 100 * time.Millisecond
	for {
		_, err := postBatchBinary(n.httpc, ch.addr, batch)
		if err == nil {
			return nil
		}
		n.log.Warn("transfer chunk post failed, retrying", "dest", ch.addr, "items", len(ch.items), "err", err)
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: transfer chunk to %s: %w", ch.addr, ctx.Err())
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// restoreItems re-appends undelivered transfer items into this node's
// own store (Append, not Apply — their keys were never forgotten).
// Arrival order within the store is perturbed relative to the original
// ingest, which snapshot digests tolerate: they sort rows.
func (n *Node) restoreItems(items []wire.Item) {
	if len(items) == 0 {
		return
	}
	store := n.srv.Sharded()
	for i := range items {
		it := &items[i]
		router := routerOfItem(it)
		switch p := &it.Payload; p.Kind {
		case wire.KindUptime:
			store.Append(router, func(s *dataset.Store) { s.Uptime = append(s.Uptime, p.Uptime) })
		case wire.KindCapacity:
			store.Append(router, func(s *dataset.Store) { s.Capacity = append(s.Capacity, p.Capacity) })
		case wire.KindDevices:
			store.Append(router, func(s *dataset.Store) {
				if p.Count != (dataset.DeviceCount{}) {
					s.Counts = append(s.Counts, p.Count)
				}
				s.Sightings = append(s.Sightings, p.Sightings...)
			})
		case wire.KindWiFi:
			store.Append(router, func(s *dataset.Store) { s.WiFi = append(s.WiFi, p.WiFi...) })
		case wire.KindFlows:
			store.Append(router, func(s *dataset.Store) { s.Flows = append(s.Flows, p.Flows...) })
		case wire.KindThroughput:
			store.Append(router, func(s *dataset.Store) { s.Throughput = append(s.Throughput, p.Throughput...) })
		case wire.KindRaw:
			n.restoreRawItem(store, router, it)
		}
	}
	n.log.Warn("restored undelivered transfer items", "items", len(items))
}

// restoreRawItem handles the two raw transfer forms: register bodies
// and sightings-only census bodies.
func (n *Node) restoreRawItem(store dataset.IngestStore, router string, it *wire.Item) {
	switch it.Endpoint {
	case "/v1/register":
		var reg struct {
			RouterID string `json:"router_id"`
			Country  string `json:"country"`
		}
		if json.Unmarshal(it.Payload.Raw, &reg) == nil && reg.RouterID != "" {
			store.Append(reg.RouterID, func(s *dataset.Store) { s.RouterCountry[reg.RouterID] = reg.Country })
		}
	case "/v1/devices":
		var up struct {
			Sightings []dataset.DeviceSighting `json:"sightings"`
		}
		if json.Unmarshal(it.Payload.Raw, &up) == nil && len(up.Sightings) > 0 {
			store.Append(router, func(s *dataset.Store) { s.Sightings = append(s.Sightings, up.Sightings...) })
		}
	}
}

// pushKeys streams the moved routers' idempotency keys to their new
// owners, chunked, retrying until ctx expires. The keys also remain at
// the source (manifest pulls still serve them); the push makes the new
// owner self-sufficient before the source drains away.
func (n *Node) pushKeys(ctx context.Context, ring *Ring, dests map[string]Member, keys []dataset.RouterKey) error {
	if len(keys) == 0 {
		return nil
	}
	type pending struct {
		entries []ManifestEntry
		count   int
	}
	byOwner := make(map[string]*pending)
	byRouter := make(map[string]*ManifestEntry)
	for _, rk := range keys {
		owner := ring.Owner(rk.Router)
		if owner == "" || owner == n.cfg.ID {
			continue
		}
		en := byRouter[owner+"\x00"+rk.Router]
		if en == nil {
			p := byOwner[owner]
			if p == nil {
				p = &pending{}
				byOwner[owner] = p
			}
			p.entries = append(p.entries, ManifestEntry{Router: rk.Router})
			en = &p.entries[len(p.entries)-1]
			byRouter[owner+"\x00"+rk.Router] = en
		}
		en.Keys = append(en.Keys, rk.Key)
	}
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	sent := 0
	for _, owner := range owners {
		mem := dests[owner]
		var batch []ManifestEntry
		batchKeys := 0
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			if err := n.postTransferKeys(ctx, mem, batch); err != nil {
				return err
			}
			sent += batchKeys
			batch, batchKeys = nil, 0
			return nil
		}
		for _, en := range byOwner[owner].entries {
			for len(en.Keys) > 0 {
				nn := len(en.Keys)
				if room := transferKeysPerMsg - batchKeys; nn > room {
					nn = room
				}
				batch = append(batch, ManifestEntry{Router: en.Router, Keys: en.Keys[:nn]})
				batchKeys += nn
				en.Keys = en.Keys[nn:]
				if batchKeys >= transferKeysPerMsg {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
	}
	n.mXferKeys.Add(int64(sent))
	return nil
}

// postTransferKeys delivers one MsgTransferKeys push with retries.
func (n *Node) postTransferKeys(ctx context.Context, mem Member, entries []ManifestEntry) error {
	backoff := 100 * time.Millisecond
	for {
		_, err := postCtrl(n.httpc, mem.CtrlAddr, "/cluster/transferkeys", &Message{
			Kind:         MsgTransferKeys,
			TransferKeys: &TransferKeys{From: n.cfg.ID, Entries: entries},
		}, 30*time.Second)
		if err == nil {
			return nil
		}
		n.log.Warn("transfer key push failed, retrying", "dest", mem.ID, "err", err)
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: key push to %s: %w", mem.ID, ctx.Err())
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// rehomeJournal re-replicates the unreplayed frames this node holds as
// a successor to a surviving epoch node, so draining does not silently
// shrink the frames' replication factor. The receiver's journalSeen
// hash flattens duplicates, and its own replay scan takes over the
// successor duty. A frame with no eligible replacement (replication ≥
// surviving nodes) is logged and left — its owner still holds the rows.
func (n *Node) rehomeJournal(ctx context.Context, e *RingEpoch) error {
	n.mu.Lock()
	entries := make([]*journalEntry, 0, len(n.journal))
	for _, en := range n.journal {
		if !en.replayed {
			entries = append(entries, en)
		}
	}
	n.mu.Unlock()
	rehomed := 0
	for _, en := range entries {
		holds := map[string]bool{en.owner: true, n.cfg.ID: true}
		for _, s := range en.succs {
			holds[s] = true
		}
		target := ""
		for _, id := range e.Nodes {
			if !holds[id] {
				target = id
				break
			}
		}
		if target == "" {
			n.log.Warn("drain: no replacement successor for journal frame",
				"owner", en.owner, "items", en.items)
			continue
		}
		mem, ok := n.ms.lookup(target)
		if !ok || mem.CtrlAddr == "" {
			return fmt.Errorf("cluster: drain: replacement successor %s unknown", target)
		}
		succs := make([]string, 0, len(en.succs))
		for _, s := range en.succs {
			if s == n.cfg.ID {
				succs = append(succs, target)
			} else {
				succs = append(succs, s)
			}
		}
		backoff := 100 * time.Millisecond
		for {
			_, err := postCtrl(n.httpc, mem.CtrlAddr, "/cluster/replicate", &Message{
				Kind:      MsgReplicate,
				Replicate: &Replicate{Owner: en.owner, Successors: succs, Batch: en.batch},
			}, 30*time.Second)
			if err == nil {
				rehomed++
				break
			}
			n.log.Warn("drain: journal re-home failed, retrying", "target", target, "err", err)
			select {
			case <-ctx.Done():
				return fmt.Errorf("cluster: drain: re-home journal to %s: %w", target, ctx.Err())
			case <-time.After(backoff):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
	if rehomed > 0 {
		n.log.Info("drain: re-homed journal frames", "frames", rehomed)
	}
	return nil
}

// handleTransfer serves MsgTransferRequest: adopt the proposed epoch
// (fencing this node's own routing view), run transfer sessions until
// one moves nothing, and answer with the total rows moved.
func (n *Node) handleTransfer(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgTransferRequest)
	if !ok {
		return
	}
	req := m.TransferReq
	if req.Epoch == nil || len(req.Epoch.Nodes) == 0 {
		http.Error(w, "cluster: transfer request without epoch", http.StatusBadRequest)
		return
	}
	n.ms.mergeEpochs(nil, req.Epoch)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	rows, err := n.rebalanceLoop(ctx, req.Epoch)
	if err != nil {
		http.Error(w, "cluster: transfer: "+err.Error(), http.StatusInternalServerError)
		return
	}
	n.writeCtrl(w, &Message{Kind: MsgTransferResponse,
		TransferResp: &TransferResponse{From: n.cfg.ID, Rows: rows}})
}

// handleTransferKeys seeds pushed idempotency keys into the local
// dedupe index (a no-op apply, like manifest seeding) and records them
// so this node's own manifests serve them onward.
func (n *Node) handleTransferKeys(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgTransferKeys)
	if !ok {
		return
	}
	store := n.srv.Sharded()
	for _, en := range m.TransferKeys.Entries {
		for _, k := range en.Keys {
			store.Apply(en.Router, k, func(*dataset.Store) {})
		}
		n.mu.Lock()
		ks := n.ownerKeys[en.Router]
		if ks == nil {
			ks = make(map[string]bool)
			n.ownerKeys[en.Router] = ks
		}
		for _, k := range en.Keys {
			ks[k] = true
		}
		n.mu.Unlock()
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDrain serves MsgDrain (relayed by a front's admin endpoint):
// kick off the drain in the background and acknowledge with 202.
func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	m, ok := n.readCtrl(w, r, MsgDrain)
	if !ok {
		return
	}
	if m.Drain.Node != n.cfg.ID {
		http.Error(w, fmt.Sprintf("cluster: drain addressed to %s, this is %s", m.Drain.Node, n.cfg.ID),
			http.StatusBadRequest)
		return
	}
	if n.draining.Load() {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		if err := n.Drain(ctx); err != nil {
			n.log.Error("drain failed", "err", err)
		}
	}()
	w.WriteHeader(http.StatusAccepted)
}

// handleEpoch reports the node's epoch state as JSON (ops/tests).
func (n *Node) handleEpoch(w http.ResponseWriter, r *http.Request) {
	writeEpochJSON(w, n.ms)
}

// epochJSON is the ops-facing shape of one ring epoch.
type epochJSON struct {
	Version   uint64   `json:"version"`
	Committed bool     `json:"committed"`
	Nodes     []string `json:"nodes"`
}

func toEpochJSON(e *RingEpoch) *epochJSON {
	if e == nil {
		return nil
	}
	return &epochJSON{Version: e.Version, Committed: e.Committed, Nodes: e.Nodes}
}

func writeEpochJSON(w http.ResponseWriter, ms *membership) {
	cur, next := ms.epochs()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Current *epochJSON `json:"current"`
		Pending *epochJSON `json:"pending"`
	}{toEpochJSON(cur), toEpochJSON(next)})
}
