package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natpeek/internal/collector"
	"natpeek/internal/heartbeat"
	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
	"natpeek/internal/wire"
)

// frontMaxUpload mirrors the collector's data-plane body bound.
const frontMaxUpload = 8 << 20

// DefaultReplication is the write replication factor when none is
// configured: every acknowledged write exists on its owner plus one
// successor's journal, so any single node death loses nothing.
const DefaultReplication = 2

// FrontConfig configures a front-tier router.
type FrontConfig struct {
	// ID identifies the front in gossip. Required.
	ID string
	// UDPAddr receives gateway heartbeats (the cluster's heartbeat log
	// lives at the front; nodes hold measurement rows). HTTPAddr serves
	// the client-facing /v1/* API; CtrlAddr the control plane.
	UDPAddr, HTTPAddr, CtrlAddr string
	// Peers seeds discovery (control-plane addresses).
	Peers []string
	// Replication is the write replication factor R: owner + R-1
	// successor journals per acknowledged write, clamped to the live
	// node count. Default DefaultReplication.
	Replication int
	// Gossip tunes the failure detector.
	Gossip GossipConfig
	// MaxInflight caps concurrent data-plane requests at the front
	// (429 + Retry-After beyond it); 0 means collector.DefaultMaxInflight.
	MaxInflight int
}

// Front is the cluster's client-facing tier. It speaks the exact same
// /v1/* + /v1/batch API as a single collector — clients cannot tell the
// difference — and routes every upload by router-ID consistent hash to
// its owning node, replicating each acknowledged write to the R-1
// successor journals before acking. Batches that span routers are split
// per placement group, re-encoded as NPB1, and forwarded with a
// front.route span appended so node-side /debug/traces shows the
// front→node hop in every waterfall.
type Front struct {
	cfg FrontConfig
	ms  *membership
	gsp *gossiper
	log *slog.Logger

	hb   *heartbeat.Log
	hbRx *heartbeat.Receiver

	httpSrv *http.Server
	ln      net.Listener
	ctrl    *http.Server
	ctrlLn  net.Listener
	httpc   *http.Client
	rec     *trace.Recorder

	admit atomic.Value // chan struct{}

	mReqs       *telemetry.CounterVec
	mThrottled  *telemetry.Counter
	mFenced     *telemetry.Counter
	mRouted     *telemetry.CounterVec
	mReplicated *telemetry.CounterVec
	mErrors     *telemetry.CounterVec

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewFront starts a front-tier router.
func NewFront(cfg FrontConfig) (*Front, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: front needs an ID")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	cfg.Gossip = cfg.Gossip.withDefaults()
	hb := heartbeat.NewLog()
	hbRx, err := heartbeat.NewReceiver(cfg.UDPAddr, hb, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: front %s: %w", cfg.ID, err)
	}
	ctrlLn, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		hbRx.Close()
		return nil, fmt.Errorf("cluster: front %s: control listen: %w", cfg.ID, err)
	}
	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		hbRx.Close()
		ctrlLn.Close()
		return nil, fmt.Errorf("cluster: front %s: listen: %w", cfg.ID, err)
	}
	reg := telemetry.Default
	f := &Front{
		cfg:    cfg,
		log:    slog.Default().With("component", "cluster-front", "front", cfg.ID),
		hb:     hb,
		hbRx:   hbRx,
		ln:     ln,
		ctrlLn: ctrlLn,
		httpc:  &http.Client{},
		rec:    trace.NewRecorder(trace.Config{}),
		mReqs: reg.CounterVec("natpeek_front_requests_total",
			"Front-tier requests received, per endpoint.", "endpoint"),
		mThrottled: reg.CounterVec("natpeek_front_throttled_total",
			"Front-tier requests answered 429, per front.", "front").With(cfg.ID),
		mFenced: reg.CounterVec("natpeek_front_fenced_total",
			"Requests answered 429 because a pending ring epoch is moving their shard, per front.", "front").With(cfg.ID),
		mRouted: reg.CounterVec("natpeek_front_routed_items_total",
			"Batch items routed to an owner node, per node.", "node"),
		mReplicated: reg.CounterVec("natpeek_front_replicated_frames_total",
			"Replicate frames fanned out to successor journals, per node.", "node"),
		mErrors: reg.CounterVec("natpeek_front_errors_total",
			"Front-tier requests failed before a clean ack, per reason.", "reason"),
		stop: make(chan struct{}),
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = collector.DefaultMaxInflight
	}
	f.admit.Store(make(chan struct{}, maxInflight))
	f.ms = newMembership(Member{
		ID: cfg.ID, Role: RoleFront,
		CtrlAddr:    ctrlLn.Addr().String(),
		DataAddr:    ln.Addr().String(),
		Incarnation: uint64(time.Now().UnixNano()),
	}, cfg.Gossip)
	f.gsp = newGossiper(cfg.ID, f.ms, f.httpc, cfg.Peers, f.log)

	ctrlMux := http.NewServeMux()
	ctrlMux.HandleFunc("POST /cluster/gossip", f.handleGossip)
	ctrlMux.HandleFunc("GET /cluster/members", func(w http.ResponseWriter, r *http.Request) {
		writeMembersJSON(w, f.ms.view())
	})
	f.ctrl = &http.Server{Handler: ctrlMux, ReadHeaderTimeout: 10 * time.Second}
	go f.ctrl.Serve(ctrlLn)

	mux := http.NewServeMux()
	for _, ep := range collector.Endpoints() {
		mux.HandleFunc("POST "+ep, f.proxyEndpoint(ep))
	}
	mux.HandleFunc("POST /v1/batch", f.instrument("/v1/batch", f.handleBatch))
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("POST /v1/cluster/drain", f.handleDrainAdmin)
	mux.HandleFunc("GET /v1/cluster/epoch", func(w http.ResponseWriter, r *http.Request) {
		writeEpochJSON(w, f.ms)
	})
	mux.HandleFunc("GET /cluster/members", func(w http.ResponseWriter, r *http.Request) {
		writeMembersJSON(w, f.ms.view())
	})
	telemetry.RegisterDebug(mux, reg)
	trace.RegisterDebug(mux, f.rec)
	f.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go f.httpSrv.Serve(ln)

	f.gsp.learn()
	f.wg.Add(1)
	go f.gossipLoop()
	f.log.Debug("front up", "http", f.HTTPAddr(), "udp", f.UDPAddr(), "ctrl", f.CtrlAddr())
	return f, nil
}

// HTTPAddr is the client-facing address (point gateways and loadgen
// here instead of at a collector).
func (f *Front) HTTPAddr() string { return f.ln.Addr().String() }

// UDPAddr is the heartbeat address.
func (f *Front) UDPAddr() string { return f.hbRx.Addr().String() }

// CtrlAddr is the control-plane address.
func (f *Front) CtrlAddr() string { return f.ctrlLn.Addr().String() }

// Heartbeats is the cluster-wide heartbeat log (heartbeats terminate at
// the front; measurement rows shard across nodes).
func (f *Front) Heartbeats() *heartbeat.Log { return f.hb }

// View returns the front's judged membership.
func (f *Front) View() []MemberView { return f.ms.view() }

// TraceRecorder exposes the front's recorder (/debug/traces).
func (f *Front) TraceRecorder() *trace.Recorder { return f.rec }

// SetMaxInflight re-arms the front's admission semaphore.
func (f *Front) SetMaxInflight(n int) {
	if n <= 0 {
		n = collector.DefaultMaxInflight
	}
	f.admit.Store(make(chan struct{}, n))
}

// Close shuts the front down.
func (f *Front) Close() error {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return nil
	}
	f.closed = true
	close(f.stop)
	f.closeMu.Unlock()
	err := f.hbRx.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if serr := f.httpSrv.Shutdown(ctx); serr != nil && err == nil {
		err = serr
	}
	if serr := f.ctrl.Shutdown(ctx); serr != nil && err == nil {
		err = serr
	}
	f.wg.Wait()
	return err
}

func (f *Front) gossipLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.Gossip.Interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		f.gsp.once()
	}
}

func (f *Front) handleGossip(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, ctrlMaxBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := DecodeMessage(body)
	if err != nil || m.Kind != MsgGossip {
		http.Error(w, "cluster: want gossip", http.StatusBadRequest)
		return
	}
	f.ms.merge(m.Gossip.Members)
	f.ms.mergeEpochs(m.Gossip.Cur, m.Gossip.Next)
	cur, next := f.ms.epochs()
	w.Header().Set("Content-Type", ctrlContentType)
	w.Write(AppendMessage(nil, &Message{Kind: MsgGossip,
		Gossip: &Gossip{From: f.cfg.ID, Members: f.ms.snapshot(), Cur: cur, Next: next}}))
}

// fenceCheck reports whether a router's shard is mid-cutover: a pending
// ring epoch assigns it a different owner than the current ring. Writes
// for such a shard are answered 429 + Retry-After — applying them at
// the old owner could race the transfer's extraction (landing after the
// final sweep and getting stranded), and applying them at the new owner
// would fork the row set before its history arrives. The client's
// normal retry loop absorbs the pause; fencing never drops a write.
// Fencing is deterministic across fronts because the pending ring is
// built from the proposal's node list alone, unfiltered by local
// liveness judgements.
func (f *Front) fenceCheck(ring, pending *Ring, router string) bool {
	return pending != nil && pending.Owner(router) != ring.Owner(router)
}

// fencedFailure is the uniform cutover answer.
func fencedFailure(router string) *forwardFailure {
	return &forwardFailure{status: http.StatusTooManyRequests, retryAfter: "1",
		msg: "shard for router " + router + " is rebalancing, retry later"}
}

// instrument wraps a data-plane handler with the collector's admission
// semantics: a full semaphore answers 429 + Retry-After without
// blocking, and every response advertises the binary batch encoding.
func (f *Front) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := f.mReqs.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		w.Header().Set("Accept-Post", wire.ContentTypeBinary+", application/json")
		sem := f.admit.Load().(chan struct{})
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		default:
			f.mThrottled.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "front saturated, retry later", http.StatusTooManyRequests)
			return
		}
		h(w, r)
	}
}

// placementGroup is one replica set's slice of a batch.
type placementGroup struct {
	placement []string
	items     []wire.Item
}

func (f *Front) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, frontMaxUpload))
	if err != nil {
		f.mErrors.With("read").Inc()
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if r.Header.Get("Content-Encoding") == "gzip" {
		if body, err = gunzipBounded(body, frontMaxUpload); err != nil {
			f.mErrors.With("gzip").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	items, err := decodeBatchItems(r.Header.Get("Content-Type"), body)
	if err != nil {
		f.mErrors.With("decode").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	groups, fail := f.groupItems(items, start)
	if fail != nil {
		if fail.status == http.StatusTooManyRequests {
			f.mFenced.Inc()
		} else {
			f.mErrors.With("no-nodes").Inc()
		}
		fail.write(w)
		return
	}

	var total collector.BatchResult
	traceparent := r.Header.Get("Traceparent")
	for _, g := range groups {
		res, fail := f.forwardGroup(r.Context(), g, traceparent, start)
		if fail != nil {
			fail.write(w)
			return
		}
		total.Applied += res.Applied
		total.Duplicates += res.Duplicates
		total.Rejected += res.Rejected
		total.Failed = append(total.Failed, res.Failed...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(total)
}

// decodeBatchItems turns either wire form of a /v1/batch body into
// owned wire.Items. JSON items are transcoded to typed payloads
// (KindRaw verbatim fallback preserves accept/reject behaviour
// byte-for-byte); NPB1 items are deep-copied out of decoder scratch.
func decodeBatchItems(contentType string, body []byte) ([]wire.Item, error) {
	if contentType == wire.ContentTypeBinary || strings.HasPrefix(contentType, wire.ContentTypeBinary+";") {
		var dec wire.Decoder
		if err := dec.Reset(body); err != nil {
			return nil, err
		}
		items := make([]wire.Item, 0, dec.Len())
		var it wire.Item
		for {
			err := dec.Next(&it)
			if err == io.EOF {
				return items, nil
			}
			if err != nil {
				return nil, err
			}
			items = append(items, it.Clone())
		}
	}
	var jitems []collector.BatchItem
	if err := json.Unmarshal(body, &jitems); err != nil {
		return nil, err
	}
	items := make([]wire.Item, 0, len(jitems))
	for _, ji := range jitems {
		items = append(items, wire.Item{
			Endpoint: ji.Endpoint,
			Key:      ji.Key,
			Payload:  wire.PayloadFromJSON(ji.Endpoint, ji.Body),
			Trace:    ji.Trace,
		})
	}
	return items, nil
}

// groupItems splits a batch by replica set, appending the front.route
// span each traced item carries across the hop. Fails the whole batch
// when the ring is empty, or with a fence when ANY item's shard is
// mid-cutover — partial application would ack rows the client has no
// way to re-send selectively, so the batch is refused before a single
// item is forwarded and the retry lands intact after the cutover.
func (f *Front) groupItems(items []wire.Item, start time.Time) ([]*placementGroup, *forwardFailure) {
	ring := f.ms.ring()
	if ring.Len() == 0 {
		return nil, &forwardFailure{status: http.StatusServiceUnavailable, msg: "no live collector nodes"}
	}
	pending := f.ms.pendingRing()
	n := f.cfg.Replication
	if n > ring.Len() {
		n = ring.Len()
	}
	byKey := make(map[string]*placementGroup)
	var groups []*placementGroup
	now := time.Now()
	for i := range items {
		it := &items[i]
		router := routerOfItem(it)
		if f.fenceCheck(ring, pending, router) {
			return nil, fencedFailure(router)
		}
		placement := ring.Lookup(router, n)
		gk := strings.Join(placement, "\x00")
		g := byKey[gk]
		if g == nil {
			g = &placementGroup{placement: placement}
			byKey[gk] = g
			groups = append(groups, g)
		}
		if trace.Enabled() && it.Key != "" {
			if it.Trace == nil {
				it.Trace = &trace.Wire{Router: router}
			}
			it.Trace.Spans = append(it.Trace.Spans, trace.Span{
				Name: "front.route", Start: start, End: now, Status: trace.StatusOK,
				Attrs: []trace.Attr{
					{K: "front", V: f.cfg.ID},
					{K: "node", V: placement[0]},
					{K: "replicas", V: fmt.Sprint(len(placement) - 1)},
				},
			})
		}
		g.items = append(g.items, *it)
	}
	return groups, nil
}

// forwardFailure is a routed request's terminal error: what to tell the
// client so its retry converges.
type forwardFailure struct {
	status     int
	retryAfter string
	msg        string
}

func (fail *forwardFailure) write(w http.ResponseWriter) {
	if fail.retryAfter != "" {
		w.Header().Set("Retry-After", fail.retryAfter)
	}
	http.Error(w, fail.msg, fail.status)
}

// forwardGroup delivers one placement group: the NPB1-encoded sub-batch
// to the owner's data plane, then a replicate frame to every successor
// journal. The client is acked only when all R copies exist; any
// failure surfaces as a retryable status and the client's idempotency
// keys flatten whatever did land.
func (f *Front) forwardGroup(ctx context.Context, g *placementGroup, traceparent string, start time.Time) (collector.BatchResult, *forwardFailure) {
	var res collector.BatchResult
	owner := g.placement[0]
	om, ok := f.ms.lookup(owner)
	if !ok {
		f.mErrors.With("owner-unknown").Inc()
		return res, &forwardFailure{status: http.StatusServiceUnavailable, msg: "owner node unknown"}
	}
	enc := wire.AppendBatch(nil, g.items)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+om.DataAddr+"/v1/batch", bytes.NewReader(enc))
	if err != nil {
		return res, &forwardFailure{status: http.StatusInternalServerError, msg: err.Error()}
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		f.mErrors.With("owner-unreachable").Inc()
		return res, &forwardFailure{status: http.StatusServiceUnavailable,
			msg: "owner " + owner + " unreachable: " + err.Error()}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		f.mErrors.With("owner-throttled").Inc()
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			ra = "1"
		}
		return res, &forwardFailure{status: http.StatusTooManyRequests, retryAfter: ra,
			msg: "owner " + owner + " saturated: " + strings.TrimSpace(string(body))}
	case resp.StatusCode != http.StatusOK || rerr != nil:
		f.mErrors.With("owner-error").Inc()
		return res, &forwardFailure{status: http.StatusBadGateway,
			msg: fmt.Sprintf("owner %s: %s: %s", owner, resp.Status, bytes.TrimSpace(body))}
	}
	if err := json.Unmarshal(body, &res); err != nil {
		return res, &forwardFailure{status: http.StatusBadGateway,
			msg: "owner " + owner + ": bad batch result: " + err.Error()}
	}
	f.mRouted.With(owner).Add(int64(len(g.items)))

	succs := g.placement[1:]
	for _, succ := range succs {
		sm, ok := f.ms.lookup(succ)
		if !ok {
			f.mErrors.With("replica-unknown").Inc()
			return res, &forwardFailure{status: http.StatusServiceUnavailable, msg: "successor node unknown"}
		}
		_, err := postCtrl(f.httpc, sm.CtrlAddr, "/cluster/replicate", &Message{
			Kind:      MsgReplicate,
			Replicate: &Replicate{Owner: owner, Successors: succs, Batch: enc},
		}, 30*time.Second)
		if err != nil {
			f.mErrors.With("replica-unreachable").Inc()
			return res, &forwardFailure{status: http.StatusServiceUnavailable,
				msg: "replica " + succ + ": " + err.Error()}
		}
		f.mReplicated.With(succ).Inc()
	}

	if trace.Enabled() && len(g.items) > 0 && g.items[0].Key != "" {
		f.rec.Finish(&trace.Trace{
			ID: trace.IDFromKey(g.items[0].Key), Endpoint: "/v1/batch",
			Router: routerOfItem(&g.items[0]),
			Spans: []trace.Span{{
				Name: "front.forward", Start: start, End: time.Now(), Status: trace.StatusOK,
				Attrs: []trace.Attr{
					{K: "node", V: owner},
					{K: "items", V: fmt.Sprint(len(g.items))},
					{K: "replicas", V: fmt.Sprint(len(succs))},
				},
			}},
		})
	}
	return res, nil
}

// proxyEndpoint serves one direct /v1/* endpoint: route by router,
// forward the body verbatim to the owner, replicate it (wrapped as a
// one-item NPB1 batch) to the successor journals, and relay the owner's
// response. Unkeyed direct posts — registration in practice — are only
// replayed as map upserts, so failover cannot duplicate rows through
// them.
func (f *Front) proxyEndpoint(endpoint string) http.HandlerFunc {
	return f.instrument(endpoint, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, frontMaxUpload))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		key := r.Header.Get("Idempotency-Key")
		router := routerOfDirect(endpoint, body, key)
		ring := f.ms.ring()
		if ring.Len() == 0 {
			f.mErrors.With("no-nodes").Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "no live collector nodes", http.StatusServiceUnavailable)
			return
		}
		if f.fenceCheck(ring, f.ms.pendingRing(), router) {
			f.mFenced.Inc()
			fencedFailure(router).write(w)
			return
		}
		n := f.cfg.Replication
		if n > ring.Len() {
			n = ring.Len()
		}
		placement := ring.Lookup(router, n)
		owner := placement[0]
		om, ok := f.ms.lookup(owner)
		if !ok {
			http.Error(w, "owner node unknown", http.StatusServiceUnavailable)
			return
		}

		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			"http://"+om.DataAddr+endpoint, bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, h := range []string{"Content-Type", "Idempotency-Key", "Traceparent"} {
			if v := r.Header.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
		resp, err := f.httpc.Do(req)
		if err != nil {
			f.mErrors.With("owner-unreachable").Inc()
			http.Error(w, "owner "+owner+" unreachable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			http.Error(w, rerr.Error(), http.StatusBadGateway)
			return
		}
		f.mRouted.With(owner).Inc()

		// Replicate only what the owner actually applied.
		if resp.StatusCode/100 == 2 && len(placement) > 1 {
			item := wire.Item{Endpoint: endpoint, Key: key,
				Payload: wire.PayloadFromJSON(endpoint, body)}
			enc := wire.AppendBatch(nil, []wire.Item{item})
			succs := placement[1:]
			for _, succ := range succs {
				sm, ok := f.ms.lookup(succ)
				if !ok {
					http.Error(w, "successor node unknown", http.StatusServiceUnavailable)
					return
				}
				if _, err := postCtrl(f.httpc, sm.CtrlAddr, "/cluster/replicate", &Message{
					Kind:      MsgReplicate,
					Replicate: &Replicate{Owner: owner, Successors: succs, Batch: enc},
				}, 30*time.Second); err != nil {
					f.mErrors.With("replica-unreachable").Inc()
					http.Error(w, "replica "+succ+": "+err.Error(), http.StatusServiceUnavailable)
					return
				}
				f.mReplicated.With(succ).Inc()
			}
		}

		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
	})
}

// handleDrainAdmin is the operator's scale-in entry point:
// POST /v1/cluster/drain?node=<id> relays a MsgDrain to the named
// node's control plane and passes its 202 back. The drain itself runs
// on the node; the operator polls GET /v1/cluster/epoch (here or on any
// front) and stops the process once the epoch without the node commits.
func (f *Front) handleDrainAdmin(w http.ResponseWriter, r *http.Request) {
	f.mReqs.With("/v1/cluster/drain").Inc()
	id := r.URL.Query().Get("node")
	if id == "" {
		http.Error(w, "missing ?node=<id>", http.StatusBadRequest)
		return
	}
	mem, ok := f.ms.lookup(id)
	if !ok || mem.Role != RoleNode {
		http.Error(w, "unknown collector node "+id, http.StatusNotFound)
		return
	}
	if _, err := postCtrl(f.httpc, mem.CtrlAddr, "/cluster/drain",
		&Message{Kind: MsgDrain, Drain: &Drain{Node: id}}, 10*time.Second); err != nil {
		http.Error(w, "drain "+id+": "+err.Error(), http.StatusBadGateway)
		return
	}
	f.log.Info("drain accepted", "node", id)
	w.WriteHeader(http.StatusAccepted)
}

// handleStats aggregates /v1/stats across every live node, plus the
// front's heartbeat log. Routers counts a router once per node that
// holds rows for it — exact while healthy, and at worst a small
// overcount after a failover re-registered routers on a successor;
// dataset row counts are exact either way (keys dedupe rows, and rows
// live on exactly one node).
func (f *Front) handleStats(w http.ResponseWriter, r *http.Request) {
	var total collector.Stats
	for _, mv := range f.ms.view() {
		if mv.Role != RoleNode || mv.State == StateDead {
			continue
		}
		st, err := f.fetchStats(r.Context(), mv.DataAddr)
		if err != nil {
			http.Error(w, "node "+mv.ID+": "+err.Error(), http.StatusBadGateway)
			return
		}
		total.Routers += st.Routers
		total.Heartbeats += st.Heartbeats
		total.Uptime += st.Uptime
		total.Capacity += st.Capacity
		total.Counts += st.Counts
		total.Sightings += st.Sightings
		total.WiFi += st.WiFi
		total.Flows += st.Flows
		total.Throughput += st.Throughput
	}
	for _, id := range f.hb.Routers() {
		total.Heartbeats += f.hb.Count(id)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(total)
}

func (f *Front) fetchStats(ctx context.Context, dataAddr string) (collector.Stats, error) {
	var st collector.Stats
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+dataAddr+"/v1/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: %s", resp.Status)
	}
	return st, json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
}

// frontHealth is the front's /healthz shape.
type frontHealth struct {
	Status    string `json:"status"`
	HTTPAddr  string `json:"http_addr"`
	UDPAddr   string `json:"heartbeat_addr"`
	CtrlAddr  string `json:"ctrl_addr"`
	LiveNodes int    `json:"live_nodes"`
	DeadNodes int    `json:"dead_nodes"`
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := frontHealth{Status: "ok", HTTPAddr: f.HTTPAddr(), UDPAddr: f.UDPAddr(), CtrlAddr: f.CtrlAddr()}
	for _, mv := range f.ms.view() {
		if mv.Role != RoleNode {
			continue
		}
		if mv.State == StateDead {
			h.DeadNodes++
		} else {
			h.LiveNodes++
		}
	}
	if h.LiveNodes == 0 {
		h.Status = "no-nodes"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// routerOfItem extracts a batch item's routing key: the typed payload's
// router, a raw payload's sniffed router, or the idempotency key's
// router prefix (every spool and loadgen key starts with the router
// ID). An unroutable item maps to the ring position of "" — a constant,
// so retries land on the same node and still dedupe.
func routerOfItem(it *wire.Item) string {
	if r := it.Payload.Router(); r != "" {
		return r
	}
	if it.Payload.Kind == wire.KindRaw && len(it.Payload.Raw) > 0 {
		if r := routerOfDirect(it.Endpoint, it.Payload.Raw, it.Key); r != "" {
			return r
		}
	}
	return keyRouter(it.Key)
}

// routerOfDirect extracts the routing key from a direct /v1/* body.
func routerOfDirect(endpoint string, body []byte, key string) string {
	if p := wire.PayloadFromJSON(endpoint, body); p.Kind != wire.KindRaw {
		if r := p.Router(); r != "" {
			return r
		}
	}
	if endpoint == "/v1/register" {
		var reg struct {
			RouterID string `json:"router_id"`
		}
		if json.Unmarshal(body, &reg) == nil && reg.RouterID != "" {
			return reg.RouterID
		}
	}
	return keyRouter(key)
}

// keyRouter is the idempotency-key fallback: keys are router-prefixed
// ("<router>:<nonce>:...") by both the spool and loadgen.
func keyRouter(key string) string {
	if i := strings.IndexByte(key, ':'); i > 0 {
		return key[:i]
	}
	return ""
}

// gunzipBounded inflates a gzip body, refusing to expand past limit.
func gunzipBounded(body []byte, limit int64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(io.LimitReader(zr, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > limit {
		return nil, fmt.Errorf("cluster: gzip body exceeds %d bytes", limit)
	}
	return out, nil
}
