package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"natpeek/internal/loadgen"
	"natpeek/internal/wire"
)

// epochView mirrors the GET /v1/cluster/epoch JSON.
type epochView struct {
	Current *epochJSON `json:"current"`
	Pending *epochJSON `json:"pending"`
}

func fetchEpoch(t *testing.T, baseURL string) epochView {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/cluster/epoch")
	if err != nil {
		t.Fatalf("fetch epoch: %v", err)
	}
	defer resp.Body.Close()
	var ev epochView
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatalf("decode epoch: %v", err)
	}
	return ev
}

// committedWithout reports whether the view shows a committed epoch
// that excludes id, with no pending cutover in flight.
func (ev epochView) committedWithout(id string) bool {
	if ev.Current == nil || !ev.Current.Committed || ev.Pending != nil {
		return false
	}
	for _, n := range ev.Current.Nodes {
		if n == id {
			return false
		}
	}
	return true
}

func (ev epochView) committedWith(id string) bool {
	if ev.Current == nil || !ev.Current.Committed || ev.Pending != nil {
		return false
	}
	for _, n := range ev.Current.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// seedUptime posts per-router uptime rows through the front as keyed
// binary batches and returns the items for later retry probes.
func seedUptime(t *testing.T, tc *testCluster, routers, perRouter int) []wire.Item {
	t.Helper()
	var items []wire.Item
	for r := 0; r < routers; r++ {
		for s := 0; s < perRouter; s++ {
			items = append(items, uptimeItem(fmt.Sprintf("reb-%04d", r), s))
		}
	}
	res := postBatch(t, frontURL(tc), items)
	if res.Applied != len(items) || res.Duplicates != 0 || res.Rejected != 0 {
		t.Fatalf("seed batch: %+v, want %d applied", res, len(items))
	}
	return items
}

// addJoiningNode starts a node that holds itself out of the legacy ring
// (Joining) until an epoch that includes it commits.
func addJoiningNode(t *testing.T, tc *testCluster, id string) *Node {
	t.Helper()
	var peers []string
	for _, nd := range tc.nodes {
		peers = append(peers, nd.CtrlAddr())
	}
	nd, err := NewNode(NodeConfig{
		ID:      id,
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: peers, Gossip: fastGossip, Joining: true,
	})
	if err != nil {
		t.Fatalf("joiner: %v", err)
	}
	tc.nodes = append(tc.nodes, nd) // the startTestCluster cleanup closes it
	return nd
}

// TestClusterScaleOutTransfersOwnership is the deterministic scale-out
// contract: a fourth node joins a loaded three-node cluster, JoinRing
// commits a new epoch, and afterwards (a) no row was lost or
// duplicated, (b) the joiner holds exactly the rows the new ring
// assigns it, and (c) a client retry of any moved upload is refused as
// a duplicate at the new owner — the dedupe keys traveled with the
// rows.
func TestClusterScaleOutTransfersOwnership(t *testing.T) {
	tc := startTestCluster(t, 3, 2)
	items := seedUptime(t, tc, 40, 3)

	joiner := addJoiningNode(t, tc, "node-3")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := joiner.JoinRing(ctx); err != nil {
		t.Fatalf("JoinRing: %v", err)
	}

	waitFor(t, 10*time.Second, "front to see the committed epoch", func() bool {
		return fetchEpoch(t, frontURL(tc)).committedWith("node-3")
	})
	ev := fetchEpoch(t, frontURL(tc))

	// Conservation: every seeded row is still in exactly one store.
	if got := totalRows(tc); got != len(items) {
		t.Fatalf("cluster holds %d rows after scale-out, want %d", got, len(items))
	}
	// Placement: the joiner holds exactly its share under the committed
	// epoch's ring — nothing more, nothing left behind at the old
	// owners.
	ring := NewRing(ev.Current.Nodes, DefaultVnodes)
	want := 0
	for _, it := range items {
		if ring.Owner(it.Payload.Router()) == "node-3" {
			want++
		}
	}
	if want == 0 {
		t.Fatal("ring assigns the joiner no seeded routers; widen the seed")
	}
	if got := len(joiner.Store().Uptime); got != want {
		t.Fatalf("joiner holds %d rows, ring assigns it %d", got, want)
	}
	for _, nd := range tc.nodes[:3] {
		for _, row := range nd.Store().Uptime {
			if ring.Owner(row.RouterID) != nd.ID() {
				t.Fatalf("row for %s left behind on %s after scale-out", row.RouterID, nd.ID())
			}
		}
	}

	// Exactly-once across the move: a full retry of the seed flattens
	// to duplicates wherever the rows now live.
	res := postBatch(t, frontURL(tc), items)
	if res.Applied != 0 || res.Duplicates != len(items) {
		t.Fatalf("post-join retry: %+v, want all %d duplicate", res, len(items))
	}
	if got := totalRows(tc); got != len(items) {
		t.Fatalf("cluster holds %d rows after retries, want %d", got, len(items))
	}
}

// TestClusterDrainViaFrontEndpoint walks the operator path end to end:
// POST /v1/cluster/drain?node=X on a front relays the drain to the
// node, the shrunken epoch commits and is visible on the front's epoch
// endpoint, the drained node ends at zero rows, and retries of its
// moved uploads dedupe at the survivors.
func TestClusterDrainViaFrontEndpoint(t *testing.T) {
	tc := startTestCluster(t, 3, 2)
	items := seedUptime(t, tc, 40, 3)
	victim := tc.nodes[1]

	resp, err := http.Post(frontURL(tc)+"/v1/cluster/drain?node="+victim.ID(), "", nil)
	if err != nil {
		t.Fatalf("drain request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain request: status %d, want 202", resp.StatusCode)
	}

	waitFor(t, 30*time.Second, "front to see the shrunken epoch commit", func() bool {
		return fetchEpoch(t, frontURL(tc)).committedWithout(victim.ID())
	})
	waitFor(t, 10*time.Second, "drained node to reach zero rows", func() bool {
		st := victim.Store()
		return len(st.Uptime)+len(st.Capacity)+len(st.Counts)+len(st.Sightings)+
			len(st.WiFi)+len(st.Flows)+len(st.Throughput) == 0
	})
	if got := totalRows(tc); got != len(items) {
		t.Fatalf("cluster holds %d rows after drain, want %d", got, len(items))
	}

	res := postBatch(t, frontURL(tc), items)
	if res.Applied != 0 || res.Duplicates != len(items) {
		t.Fatalf("post-drain retry: %+v, want all %d duplicate", res, len(items))
	}
	if got := totalRows(tc); got != len(items) {
		t.Fatalf("cluster holds %d rows after retries, want %d", got, len(items))
	}
	// The drained node keeps remembering the moved keys too: a retry
	// landing directly on it (a client with a stale node address) must
	// also be refused.
	victimURL := "http://" + victim.DataAddr()
	if res, status, err := tryPostBatch(victimURL, items[:3]); err != nil || status != http.StatusOK {
		t.Fatalf("direct retry at drained node: status %d err %v", status, err)
	} else if res.Applied != 0 || res.Duplicates != 3 {
		t.Fatalf("direct retry at drained node re-applied rows: %+v", res)
	}
}

// TestFrontFencesDuringCutover pins the no-drop guarantee's other half:
// while a pending epoch is gossiped (cutover in flight), writes for a
// router whose owner is about to change are refused with 429 +
// Retry-After — never forwarded, never dropped — on both the batch and
// the direct-endpoint paths, while unaffected routers keep flowing.
func TestFrontFencesDuringCutover(t *testing.T) {
	tc := startTestCluster(t, 3, 2)

	// Inject a pending epoch that removes node-2, exactly what a drain
	// broadcast does before its transfer starts.
	pending := &RingEpoch{Version: 1, Nodes: []string{"node-0", "node-1"}}
	if _, err := postCtrl(http.DefaultClient, tc.front.CtrlAddr(), "/cluster/gossip",
		&Message{Kind: MsgGossip, Gossip: &Gossip{From: "node-0", Next: pending}},
		5*time.Second); err != nil {
		t.Fatalf("inject pending epoch: %v", err)
	}
	waitFor(t, 5*time.Second, "front to gossip the pending epoch", func() bool {
		ev := fetchEpoch(t, frontURL(tc))
		return ev.Pending != nil && ev.Pending.Version == 1
	})

	full := NewRing([]string{"node-0", "node-1", "node-2"}, DefaultVnodes)
	shrunk := NewRing(pending.Nodes, DefaultVnodes)
	fenced, open := "", ""
	for i := 0; fenced == "" || open == ""; i++ {
		r := fmt.Sprintf("fence-%04d", i)
		if full.Owner(r) != shrunk.Owner(r) {
			fenced = r
		} else if open == "" {
			open = r
		}
	}

	// Batch path: the fenced router's item is refused before anything
	// forwards; the open router's identical batch lands.
	_, status, err := tryPostBatch(frontURL(tc), []wire.Item{uptimeItem(fenced, 1)})
	if err == nil || status != http.StatusTooManyRequests {
		t.Fatalf("fenced batch: status %d err %v, want 429", status, err)
	}
	if res, status, err := tryPostBatch(frontURL(tc), []wire.Item{uptimeItem(open, 1)}); err != nil ||
		status != http.StatusOK || res.Applied != 1 {
		t.Fatalf("open-router batch during cutover: status %d res %+v err %v", status, res, err)
	}

	// The 429 must carry Retry-After so spool clients back off politely.
	raw := wire.AppendBatch(nil, []wire.Item{uptimeItem(fenced, 2)})
	resp, err := http.Post(frontURL(tc)+"/v1/batch", wire.ContentTypeBinary, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("fenced batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("fenced batch: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Direct-endpoint path fences on the same predicate.
	body := []byte(fmt.Sprintf(`{"router_id":%q,"reported_at":"2013-04-01T12:00:00Z","uptime_s":60}`, fenced))
	req, _ := http.NewRequest(http.MethodPost, frontURL(tc)+"/v1/uptime", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", fenced+":direct:1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("fenced direct post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fenced direct post: status %d, want 429", resp.StatusCode)
	}
}

// TestTwoFrontsConvergeOnEpoch: a drain initiated through one front
// must become visible on every front — fronts learn epochs only via
// gossip, and clients behind either front see the same ring.
func TestTwoFrontsConvergeOnEpoch(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	seedUptime(t, tc, 12, 2)
	var peers []string
	for _, nd := range tc.nodes {
		peers = append(peers, nd.CtrlAddr())
	}
	second, err := NewFront(FrontConfig{
		ID:      "front-1",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: peers, Replication: 2, Gossip: fastGossip,
	})
	if err != nil {
		t.Fatalf("second front: %v", err)
	}
	t.Cleanup(func() { second.Close() })

	victim := tc.nodes[1]
	resp, err := http.Post(frontURL(tc)+"/v1/cluster/drain?node="+victim.ID(), "", nil)
	if err != nil {
		t.Fatalf("drain request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain request: status %d", resp.StatusCode)
	}

	secondURL := "http://" + second.HTTPAddr()
	waitFor(t, 30*time.Second, "both fronts to converge on the shrunken epoch", func() bool {
		a, b := fetchEpoch(t, frontURL(tc)), fetchEpoch(t, secondURL)
		return a.committedWithout(victim.ID()) && b.committedWithout(victim.ID()) &&
			a.Current.Version == b.Current.Version
	})
}

// TestChaosSoakScaleOut is the scale-out headline proof: a fourth node
// joins mid-soak, the transfer races live keyed traffic (including 429
// fencing during the cutover window and client retries straddling the
// move), and the cluster must still converge to exactly the generated
// row counts — zero lost, zero duplicated.
func TestChaosSoakScaleOut(t *testing.T) {
	routers, cycles := 48, 10
	if testing.Short() {
		routers, cycles = 16, 6
	}
	tc := startTestCluster(t, 3, 2)

	cfg := loadgen.Config{
		BaseURL:  frontURL(tc),
		Routers:  routers,
		Cycles:   cycles,
		Interval: 50 * time.Millisecond,
		Ramp:     200 * time.Millisecond,
		Workers:  6,
		Seed:     1,
	}
	type outcome struct {
		rep *loadgen.Report
		err error
	}
	done := make(chan outcome, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() {
		rep, err := loadgen.Run(ctx, cfg)
		done <- outcome{rep, err}
	}()

	// Let traffic establish ownership first, then grow the ring under
	// fire.
	waitFor(t, 15*time.Second, "cluster to own some rows", func() bool {
		return totalRows(tc) > 0
	})
	joiner := addJoiningNode(t, tc, "node-3")
	if err := joiner.JoinRing(ctx); err != nil {
		t.Fatalf("JoinRing under load: %v", err)
	}
	t.Logf("%s joined mid-run", joiner.ID())

	out := <-done
	if out.err != nil {
		t.Fatalf("loadgen run: %v", out.err)
	}
	rep := out.rep
	t.Logf("soak: %d rows generated, %d requests, %d retries, %d throttled, lost=%d",
		rep.Generated.Total(), rep.Requests, rep.Retries, rep.Throttled, rep.Lost)

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && clusterRows(tc) != rep.Generated {
		time.Sleep(20 * time.Millisecond)
	}
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster did not converge after scale-out:\n got %+v\nwant %+v", got, rep.Generated)
	}
	time.Sleep(10 * fastGossip.Interval)
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster rows diverged after settling:\n got %+v\nwant %+v", got, rep.Generated)
	}
	if rep.Lost < 0 {
		t.Fatalf("negative lost rows (%d): duplicated rows in cluster stats", rep.Lost)
	}
	// The epoch must have actually cut over and given the joiner work.
	if !fetchEpoch(t, frontURL(tc)).committedWith("node-3") {
		t.Fatal("epoch with the joiner never committed on the front")
	}
	if got := len(joiner.Store().Uptime) + len(joiner.Store().Flows); got == 0 {
		t.Error("joiner ended the soak owning no rows")
	}
}

// TestChaosSoakDrain is the scale-in headline proof: a loaded node is
// drained to zero mid-soak. Its rows stream to the survivors while the
// generators keep writing (retrying through the fenced window), and
// the totals must converge exactly — nothing lost in transit, nothing
// applied twice even though every moved upload's key changed homes.
func TestChaosSoakDrain(t *testing.T) {
	routers, cycles := 48, 10
	if testing.Short() {
		routers, cycles = 16, 6
	}
	tc := startTestCluster(t, 3, 2)

	cfg := loadgen.Config{
		BaseURL:  frontURL(tc),
		Routers:  routers,
		Cycles:   cycles,
		Interval: 50 * time.Millisecond,
		Ramp:     200 * time.Millisecond,
		Workers:  6,
		Seed:     1,
	}
	type outcome struct {
		rep *loadgen.Report
		err error
	}
	done := make(chan outcome, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() {
		rep, err := loadgen.Run(ctx, cfg)
		done <- outcome{rep, err}
	}()

	victim := tc.nodes[1]
	waitFor(t, 15*time.Second, "victim to own some rows", func() bool {
		st := victim.Store()
		return len(st.Uptime)+len(st.Capacity)+len(st.Counts)+len(st.Sightings)+
			len(st.WiFi)+len(st.Flows)+len(st.Throughput) > 0
	})
	if err := victim.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	t.Logf("%s drained mid-run", victim.ID())

	out := <-done
	if out.err != nil {
		t.Fatalf("loadgen run: %v", out.err)
	}
	rep := out.rep
	t.Logf("soak: %d rows generated, %d requests, %d retries, %d throttled, lost=%d",
		rep.Generated.Total(), rep.Requests, rep.Retries, rep.Throttled, rep.Lost)

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && clusterRows(tc) != rep.Generated {
		time.Sleep(20 * time.Millisecond)
	}
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster did not converge after drain:\n got %+v\nwant %+v", got, rep.Generated)
	}
	time.Sleep(10 * fastGossip.Interval)
	if got := clusterRows(tc); got != rep.Generated {
		t.Fatalf("cluster rows diverged after settling:\n got %+v\nwant %+v", got, rep.Generated)
	}
	if rep.Lost < 0 {
		t.Fatalf("negative lost rows (%d): duplicated rows in cluster stats", rep.Lost)
	}
	if !fetchEpoch(t, frontURL(tc)).committedWithout(victim.ID()) {
		t.Fatal("shrunken epoch never committed on the front")
	}
	// The drained node ends empty; the post-commit sweep catches any
	// row that slipped in between the last transfer round and the
	// fence.
	waitFor(t, 10*time.Second, "drained node to reach zero rows", func() bool {
		st := victim.Store()
		return len(st.Uptime)+len(st.Capacity)+len(st.Counts)+len(st.Sightings)+
			len(st.WiFi)+len(st.Flows)+len(st.Throughput) == 0
	})
}
