package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleMessages() map[string]*Message {
	members := []Member{
		{ID: "node-a", Role: RoleNode, CtrlAddr: "127.0.0.1:7101", DataAddr: "127.0.0.1:7001",
			Incarnation: 17, Beat: 42},
		{ID: "front-1", Role: RoleFront, CtrlAddr: "127.0.0.1:7102", DataAddr: "127.0.0.1:7002",
			Incarnation: 3, Beat: 9000},
		{}, // zero member survives the trip too
	}
	return map[string]*Message{
		"gossip":       {Kind: MsgGossip, Gossip: &Gossip{From: "node-a", Members: members}},
		"gossip-empty": {Kind: MsgGossip, Gossip: &Gossip{From: "joiner"}},
		"manifest-request": {Kind: MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: "node-b", Members: members[:2]}},
		"manifest-request-targeted": {Kind: MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: "node-b", Routers: []string{"rt-0001", "rt-0002"}}},
		"manifest-response": {Kind: MsgManifestResponse,
			ManifestResp: &ManifestResponse{From: "node-a", Entries: []ManifestEntry{
				{Router: "rt-0001", Keys: []string{"rt-0001:n:1", "rt-0001:n:2"}},
				{Router: "rt-0002"},
			}}},
		"replicate": {Kind: MsgReplicate, Replicate: &Replicate{
			Owner: "node-a", Successors: []string{"node-b", "node-c"},
			Batch: []byte("NPB1\x00")}},
		"replicate-empty-batch": {Kind: MsgReplicate, Replicate: &Replicate{
			Owner: "node-a", Successors: []string{"node-b"}, Batch: []byte{}}},
	}
}

func TestControlRoundTrip(t *testing.T) {
	for name, m := range sampleMessages() {
		buf := AppendMessage(nil, m)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\nwant %+v\ngot  %+v", name, m, got)
		}
		if again := AppendMessage(nil, got); !bytes.Equal(buf, again) {
			t.Errorf("%s: re-encode is not byte-stable", name)
		}
	}
}

func TestControlDecodeRejects(t *testing.T) {
	good := AppendMessage(nil, sampleMessages()["gossip"])
	cases := map[string][]byte{
		"empty":            nil,
		"bad-magic":        []byte("JSON{}"),
		"magic-only":       []byte(ctrlMagic),
		"unknown-kind":     append([]byte(ctrlMagic), 0x7f),
		"truncated":        good[:len(good)-3],
		"trailing-garbage": append(append([]byte(nil), good...), 0xde, 0xad),
		// A count claiming more members than there are bytes left must
		// be refused before any allocation sized from it.
		"forged-count": append([]byte(ctrlMagic+string(rune(MsgGossip))), 0x00, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// TestReplicateBatchCopied pins that a decoded Replicate does not alias
// the request buffer: the journal retains batches long after the HTTP
// body's backing array is reused.
func TestReplicateBatchCopied(t *testing.T) {
	buf := AppendMessage(nil, sampleMessages()["replicate"])
	m, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), m.Replicate.Batch...)
	for i := range buf {
		buf[i] = 0xaa
	}
	if !bytes.Equal(m.Replicate.Batch, want) {
		t.Fatal("Replicate.Batch aliases the decode input")
	}
}
