package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleMessages() map[string]*Message {
	members := []Member{
		{ID: "node-a", Role: RoleNode, CtrlAddr: "127.0.0.1:7101", DataAddr: "127.0.0.1:7001",
			Incarnation: 17, Beat: 42},
		{ID: "front-1", Role: RoleFront, CtrlAddr: "127.0.0.1:7102", DataAddr: "127.0.0.1:7002",
			Incarnation: 3, Beat: 9000},
		{}, // zero member survives the trip too
	}
	epochMembers := []Member{
		{ID: "node-a", Role: RoleNode, CtrlAddr: "127.0.0.1:7101", DataAddr: "127.0.0.1:7001",
			Incarnation: 17, Beat: 42, EpochVersion: 7},
		{ID: "node-d", Role: RoleNode, CtrlAddr: "127.0.0.1:7104", DataAddr: "127.0.0.1:7004",
			Incarnation: 1, Beat: 2, EpochVersion: 8, Joining: true},
	}
	return map[string]*Message{
		"gossip":       {Kind: MsgGossip, Gossip: &Gossip{From: "node-a", Members: members}},
		"gossip-empty": {Kind: MsgGossip, Gossip: &Gossip{From: "joiner"}},
		"gossip-epochs": {Kind: MsgGossip, Gossip: &Gossip{From: "node-a", Members: epochMembers,
			Cur:  &RingEpoch{Version: 7, Committed: true, Nodes: []string{"node-a", "node-b", "node-c"}},
			Next: &RingEpoch{Version: 8, Nodes: []string{"node-a", "node-b", "node-c", "node-d"}}}},
		"gossip-pending-only": {Kind: MsgGossip, Gossip: &Gossip{From: "front-1",
			Next: &RingEpoch{Version: 1, Nodes: []string{"node-a"}}}},
		"transfer-request": {Kind: MsgTransferRequest, TransferReq: &TransferRequest{
			From:  "node-d",
			Epoch: &RingEpoch{Version: 8, Nodes: []string{"node-a", "node-b", "node-c", "node-d"}}}},
		"transfer-request-bare": {Kind: MsgTransferRequest, TransferReq: &TransferRequest{From: "node-d"}},
		"transfer-response": {Kind: MsgTransferResponse, TransferResp: &TransferResponse{
			From: "node-a", Rows: 123456}},
		"transfer-keys": {Kind: MsgTransferKeys, TransferKeys: &TransferKeys{
			From: "node-a", Entries: []ManifestEntry{
				{Router: "rt-0001", Keys: []string{"rt-0001:xfer:node-a:1:1:0", "rt-0001:n:9"}},
				{Router: "rt-0002"},
			}}},
		"transfer-keys-empty": {Kind: MsgTransferKeys, TransferKeys: &TransferKeys{From: "node-a"}},
		"drain":               {Kind: MsgDrain, Drain: &Drain{Node: "node-b"}},
		"manifest-request": {Kind: MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: "node-b", Members: members[:2]}},
		"manifest-request-targeted": {Kind: MsgManifestRequest,
			ManifestReq: &ManifestRequest{Joiner: "node-b", Routers: []string{"rt-0001", "rt-0002"}}},
		"manifest-response": {Kind: MsgManifestResponse,
			ManifestResp: &ManifestResponse{From: "node-a", Entries: []ManifestEntry{
				{Router: "rt-0001", Keys: []string{"rt-0001:n:1", "rt-0001:n:2"}},
				{Router: "rt-0002"},
			}}},
		"replicate": {Kind: MsgReplicate, Replicate: &Replicate{
			Owner: "node-a", Successors: []string{"node-b", "node-c"},
			Batch: []byte("NPB1\x00")}},
		"replicate-empty-batch": {Kind: MsgReplicate, Replicate: &Replicate{
			Owner: "node-a", Successors: []string{"node-b"}, Batch: []byte{}}},
	}
}

func TestControlRoundTrip(t *testing.T) {
	for name, m := range sampleMessages() {
		buf := AppendMessage(nil, m)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\nwant %+v\ngot  %+v", name, m, got)
		}
		if again := AppendMessage(nil, got); !bytes.Equal(buf, again) {
			t.Errorf("%s: re-encode is not byte-stable", name)
		}
	}
}

// memberWithFlags encodes a one-member gossip and forges the member's
// flags byte (it sits right before the two epoch presence bytes).
func memberWithFlags(flags byte) []byte {
	buf := AppendMessage(nil, &Message{Kind: MsgGossip,
		Gossip: &Gossip{From: "x", Members: []Member{{ID: "m"}}}})
	buf[len(buf)-3] = flags
	return buf
}

func TestControlDecodeRejects(t *testing.T) {
	good := AppendMessage(nil, sampleMessages()["gossip"])
	cases := map[string][]byte{
		"empty":            nil,
		"bad-magic":        []byte("JSON{}"),
		"magic-only":       []byte(ctrlMagic),
		"unknown-kind":     append([]byte(ctrlMagic), 0x7f),
		"truncated":        good[:len(good)-3],
		"trailing-garbage": append(append([]byte(nil), good...), 0xde, 0xad),
		// A count claiming more members than there are bytes left must
		// be refused before any allocation sized from it.
		"forged-count": append([]byte(ctrlMagic+string(rune(MsgGossip))), 0x00, 0xff, 0xff, 0xff, 0x7f),
		// Same bound on the transfer-keys path: a forged entry count
		// (and a forged per-router key count) must be refused before
		// any allocation — a drain peer is still an untrusted input.
		"forged-transfer-entries": append([]byte(ctrlMagic+string(rune(MsgTransferKeys))),
			0x00, 0xff, 0xff, 0xff, 0x7f),
		"forged-transfer-keys": append([]byte(ctrlMagic+string(rune(MsgTransferKeys))),
			0x00, 0x01, 0x00, 0xff, 0xff, 0xff, 0x7f),
		// Epoch encodings are canonical: presence and committed bytes
		// outside {0,1} are refused, not normalized, so gossip relays
		// stay byte-stable.
		"epoch-bad-presence": append([]byte(ctrlMagic+string(rune(MsgTransferRequest))), 0x00, 0x02),
		"epoch-bad-committed": append([]byte(ctrlMagic+string(rune(MsgTransferRequest))),
			0x00, 0x01, 0x07, 0x02, 0x00),
		// A forged node count inside an epoch hits the same pre-alloc
		// bound as list counts everywhere else.
		"epoch-forged-nodes": append([]byte(ctrlMagic+string(rune(MsgTransferRequest))),
			0x00, 0x01, 0x07, 0x01, 0xff, 0xff, 0xff, 0x7f),
		// Member flags are versioned: unknown bits are a decode error
		// (a newer peer's flags must not be silently dropped by an
		// older relay and re-gossiped stripped).
		"member-unknown-flags": memberWithFlags(0xfe),
	}
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// TestReplicateBatchCopied pins that a decoded Replicate does not alias
// the request buffer: the journal retains batches long after the HTTP
// body's backing array is reused.
func TestReplicateBatchCopied(t *testing.T) {
	buf := AppendMessage(nil, sampleMessages()["replicate"])
	m, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), m.Replicate.Batch...)
	for i := range buf {
		buf[i] = 0xaa
	}
	if !bytes.Equal(m.Replicate.Batch, want) {
		t.Fatal("Replicate.Batch aliases the decode input")
	}
}
