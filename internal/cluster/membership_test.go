package cluster

import (
	"reflect"
	"testing"
	"time"
)

// testMembership builds a membership with an injectable clock. The
// returned advance function moves the fake clock; all liveness
// judgements derive from it, so every timing edge is exact.
func testMembership(selfID string) (*membership, func(d time.Duration)) {
	ms := newMembership(Member{ID: selfID, Role: RoleNode, Incarnation: 1},
		GossipConfig{Interval: time.Second, SuspectAfter: 3 * time.Second, DeadAfter: 10 * time.Second})
	now := time.Unix(1_700_000_000, 0)
	ms.now = func() time.Time { return now }
	return ms, func(d time.Duration) { now = now.Add(d) }
}

func stateOf(ms *membership, id string) State {
	for _, mv := range ms.view() {
		if mv.ID == id {
			return mv.State
		}
	}
	return StateDead
}

// TestMembershipLivenessLattice walks the suspect→dead→reborn lattice
// table-driven over the beat-timing edges: ages exactly AT a threshold
// stay below it (the comparisons are strictly-greater), one tick past
// crosses, a beat advance resets the clock, and a fresh incarnation
// revives even a dead member.
func TestMembershipLivenessLattice(t *testing.T) {
	peer := Member{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 1}
	cases := []struct {
		name string
		run  func(ms *membership, advance func(time.Duration))
		want State
	}{
		{"fresh merge is alive", func(ms *membership, adv func(time.Duration)) {}, StateAlive},
		{"age exactly SuspectAfter stays alive", func(ms *membership, adv func(time.Duration)) {
			adv(3 * time.Second)
		}, StateAlive},
		{"one past SuspectAfter is suspect", func(ms *membership, adv func(time.Duration)) {
			adv(3*time.Second + time.Nanosecond)
		}, StateSuspect},
		{"age exactly DeadAfter stays suspect", func(ms *membership, adv func(time.Duration)) {
			adv(10 * time.Second)
		}, StateSuspect},
		{"one past DeadAfter is dead", func(ms *membership, adv func(time.Duration)) {
			adv(10*time.Second + time.Nanosecond)
		}, StateDead},
		{"beat advance rescues a suspect", func(ms *membership, adv func(time.Duration)) {
			adv(5 * time.Second)
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 2}})
		}, StateAlive},
		{"equal beat does not rescue", func(ms *membership, adv func(time.Duration)) {
			adv(5 * time.Second)
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 1}})
		}, StateSuspect},
		{"stale beat from a slow gossiper does not rescue", func(ms *membership, adv func(time.Duration)) {
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 9}})
			adv(5 * time.Second)
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 3}})
		}, StateSuspect},
		{"rebirth: higher incarnation with a LOWER beat revives the dead", func(ms *membership, adv func(time.Duration)) {
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 100}})
			adv(11 * time.Second)
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 6, Beat: 0}})
		}, StateAlive},
		{"incarnation tie falls back to beat comparison", func(ms *membership, adv func(time.Duration)) {
			adv(11 * time.Second)
			ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 0}})
		}, StateDead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms, advance := testMembership("self")
			ms.merge([]Member{peer})
			tc.run(ms, advance)
			if got := stateOf(ms, "peer"); got != tc.want {
				t.Fatalf("peer state = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestMembershipRebirthReplacesWholesale pins the rejoin contract: a
// higher incarnation replaces the member record entirely — addresses
// included — even when its beat is far behind the old life's.
func TestMembershipRebirthReplacesWholesale(t *testing.T) {
	ms, _ := testMembership("self")
	ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 5, Beat: 500,
		CtrlAddr: "old:1", DataAddr: "old:2"}})
	ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 6, Beat: 1,
		CtrlAddr: "new:1", DataAddr: "new:2"}})
	mem, ok := ms.lookup("peer")
	if !ok || mem.CtrlAddr != "new:1" || mem.DataAddr != "new:2" || mem.Beat != 1 {
		t.Fatalf("rebirth did not replace wholesale: %+v", mem)
	}
}

// TestMembershipEpochMerge is the epoch convergence table: committed
// epochs win by version regardless of arrival order, pending proposals
// need to be strictly newer than everything known, same-version
// concurrent proposals converge on the lexicographically-smaller node
// list on EVERY member (no split brain on arrival order), and a commit
// at or past the pending version retires the proposal.
func TestMembershipEpochMerge(t *testing.T) {
	committed := func(v uint64, nodes ...string) *RingEpoch {
		return &RingEpoch{Version: v, Committed: true, Nodes: nodes}
	}
	pending := func(v uint64, nodes ...string) *RingEpoch {
		return &RingEpoch{Version: v, Nodes: nodes}
	}
	cases := []struct {
		name     string
		in       []*RingEpoch // merged in order
		wantCur  *RingEpoch
		wantNext *RingEpoch
	}{
		{"committed adopted", []*RingEpoch{committed(1, "a", "b")},
			committed(1, "a", "b"), nil},
		{"older committed ignored", []*RingEpoch{committed(2, "a", "b", "c"), committed(1, "a", "b")},
			committed(2, "a", "b", "c"), nil},
		{"pending adopted", []*RingEpoch{committed(1, "a", "b"), pending(2, "a", "b", "c")},
			committed(1, "a", "b"), pending(2, "a", "b", "c")},
		{"pending at committed version ignored", []*RingEpoch{committed(2, "a", "b"), pending(2, "a", "c")},
			committed(2, "a", "b"), nil},
		{"newer pending supersedes older pending", []*RingEpoch{pending(2, "a", "b"), pending(3, "a")},
			nil, pending(3, "a")},
		{"older pending does not regress", []*RingEpoch{pending(3, "a"), pending(2, "a", "b")},
			nil, pending(3, "a")},
		{"same-version tie-break: smaller node list wins, either order",
			[]*RingEpoch{pending(2, "a", "c"), pending(2, "a", "b")},
			nil, pending(2, "a", "b")},
		{"same-version tie-break: arrival order irrelevant",
			[]*RingEpoch{pending(2, "a", "b"), pending(2, "a", "c")},
			nil, pending(2, "a", "b")},
		{"commit past pending retires it", []*RingEpoch{pending(2, "a", "b"), committed(3, "a")},
			committed(3, "a"), nil},
		{"commit at pending version retires it", []*RingEpoch{pending(2, "a", "b"), committed(2, "a", "b")},
			committed(2, "a", "b"), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms, _ := testMembership("self")
			for _, e := range tc.in {
				ms.mergeEpochs(nil, e)
			}
			cur, next := ms.epochs()
			if !reflect.DeepEqual(cur, tc.wantCur) {
				t.Fatalf("cur = %+v, want %+v", cur, tc.wantCur)
			}
			if !reflect.DeepEqual(next, tc.wantNext) {
				t.Fatalf("next = %+v, want %+v", next, tc.wantNext)
			}
		})
	}
}

// TestMembershipEpochVersionPrecedence pins the epoch-vs-incarnation
// separation: a member rebirth (new incarnation) never regresses epoch
// state — epochs only move by version — and the gossiped self entry
// advertises the highest version seen, pending included, which is what
// waitEpochVisible's fence barrier reads.
func TestMembershipEpochVersionPrecedence(t *testing.T) {
	ms, _ := testMembership("self")
	ms.mergeEpochs(&RingEpoch{Version: 3, Committed: true, Nodes: []string{"a", "b"}}, nil)
	// A reborn peer gossiping an ancient committed epoch must not win.
	ms.merge([]Member{{ID: "peer", Role: RoleNode, Incarnation: 99, Beat: 1}})
	ms.mergeEpochs(&RingEpoch{Version: 1, Committed: true, Nodes: []string{"a"}}, nil)
	cur, _ := ms.epochs()
	if cur.Version != 3 {
		t.Fatalf("high incarnation gossip regressed epoch to %d", cur.Version)
	}
	if got := ms.bump().EpochVersion; got != 3 {
		t.Fatalf("self advertises epoch %d, want 3", got)
	}
	ms.mergeEpochs(nil, &RingEpoch{Version: 4, Nodes: []string{"a", "b", "c"}})
	if got := ms.bump().EpochVersion; got != 4 {
		t.Fatalf("self advertises epoch %d after pending merge, want 4 (fence barrier reads pending too)", got)
	}
}

// TestMembershipRingSelection covers which members make the routing
// ring in each regime: pre-epoch rings exclude dead and mid-join
// members; a committed epoch's node list IS the ring, filtered only by
// local liveness; the pending ring is the proposal verbatim.
func TestMembershipRingSelection(t *testing.T) {
	ms, advance := testMembership("self")
	ms.merge([]Member{
		{ID: "n1", Role: RoleNode, Incarnation: 1, Beat: 1},
		{ID: "n2", Role: RoleNode, Incarnation: 1, Beat: 1},
		{ID: "joiner", Role: RoleNode, Incarnation: 1, Beat: 1, Joining: true},
		{ID: "front", Role: RoleFront, Incarnation: 1, Beat: 1},
	})
	if got := ms.ring().Nodes(); !reflect.DeepEqual(got, []string{"n1", "n2", "self"}) {
		t.Fatalf("legacy ring = %v, want nodes only, joiner and front excluded", got)
	}
	if got := ms.planningNodes(); !reflect.DeepEqual(got, []string{"n1", "n2", "self"}) {
		t.Fatalf("planningNodes = %v", got)
	}
	if ms.pendingRing() != nil {
		t.Fatal("pendingRing without a proposal should be nil")
	}

	// A committed epoch takes over ring construction entirely: members
	// outside it (n2) drop off even though alive, and the Joining flag
	// no longer matters for members the epoch includes.
	ms.mergeEpochs(&RingEpoch{Version: 1, Committed: true, Nodes: []string{"joiner", "n1", "self"}}, nil)
	if got := ms.ring().Nodes(); !reflect.DeepEqual(got, []string{"joiner", "n1", "self"}) {
		t.Fatalf("epoch ring = %v, want the epoch's node list", got)
	}
	if got := ms.planningNodes(); !reflect.DeepEqual(got, []string{"joiner", "n1", "self"}) {
		t.Fatalf("planningNodes under epoch = %v", got)
	}

	// Local liveness still filters the committed ring (dead members
	// fail over), but never the pending ring (fencing must be
	// deterministic across processes with different judgements).
	ms.mergeEpochs(nil, &RingEpoch{Version: 2, Nodes: []string{"n1", "self"}})
	advance(11 * time.Second) // every peer's beat now stalls past DeadAfter
	if got := ms.ring().Nodes(); !reflect.DeepEqual(got, []string{"self"}) {
		t.Fatalf("epoch ring with dead peers = %v, want just self", got)
	}
	if got := ms.pendingRing().Nodes(); !reflect.DeepEqual(got, []string{"n1", "self"}) {
		t.Fatalf("pending ring = %v, want proposal verbatim, liveness ignored", got)
	}
}

// TestMembershipCommitEpoch pins the coordinator's commit guard: commit
// succeeds only while the proposal it transferred under is still the
// pending one; a superseding proposal makes it fail so the coordinator
// reports an error instead of unfencing the wrong composition.
func TestMembershipCommitEpoch(t *testing.T) {
	ms, _ := testMembership("self")
	e := ms.proposeEpoch([]string{"b", "a", "self"})
	if e.Version != 1 || !reflect.DeepEqual(e.Nodes, []string{"a", "b", "self"}) {
		t.Fatalf("proposeEpoch = %+v, want version 1 with sorted nodes", e)
	}
	if _, ok := ms.commitEpoch(99); ok {
		t.Fatal("commit of an unknown version succeeded")
	}
	ms.mergeEpochs(nil, &RingEpoch{Version: 2, Nodes: []string{"a", "self"}})
	if _, ok := ms.commitEpoch(e.Version); ok {
		t.Fatal("commit succeeded after the proposal was superseded")
	}
	got, ok := ms.commitEpoch(2)
	if !ok || !got.Committed || got.Version != 2 {
		t.Fatalf("commit of the live proposal = %+v, %v", got, ok)
	}
	if _, next := ms.epochs(); next != nil {
		t.Fatalf("pending survives its own commit: %+v", next)
	}
	if e2 := ms.proposeEpoch([]string{"a"}); e2.Version != 3 {
		t.Fatalf("next proposal version = %d, want 3", e2.Version)
	}
}
