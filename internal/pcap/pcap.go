// Package pcap reads and writes classic libpcap capture files
// (little-endian, microsecond resolution, LINKTYPE_ETHERNET). The
// paper's Traffic data set begins as "the size and timestamp of every
// packet relayed to and from the Internet" (§3.2.2); this package is the
// trace layer under that — gateway captures written with it open
// directly in tcpdump/Wireshark.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicLE    = 0xa1b2c3d4
	magicBE    = 0xd4c3b2a1
	versionMaj = 2
	versionMin = 4
	// LinkTypeEthernet is the only link type this package emits.
	LinkTypeEthernet = 1
)

// Errors.
var (
	ErrBadMagic  = errors.New("pcap: bad magic")
	ErrTruncated = errors.New("pcap: truncated")
)

// Packet is one captured frame.
type Packet struct {
	At   time.Time
	Data []byte
	// OrigLen is the frame's original length; ≥ len(Data) when the
	// capture was truncated by the snap length.
	OrigLen int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen int
}

// NewWriter writes the file header and returns a Writer. snapLen caps
// stored bytes per packet (0 = 65535).
func NewWriter(w io.Writer, snapLen int) (*Writer, error) {
	if snapLen <= 0 {
		snapLen = 65535
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], versionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one frame.
func (pw *Writer) WritePacket(p Packet) error {
	data := p.Data
	orig := p.OrigLen
	if orig < len(data) {
		orig = len(data)
	}
	if len(data) > pw.snapLen {
		data = data[:pw.snapLen]
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.At.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.At.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(orig))
	if _, err := pw.w.Write(hdr); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	if _, err := pw.w.Write(data); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	return nil
}

// Reader parses a pcap stream.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	SnapLen int
	// LinkType is the capture's link-layer type.
	LinkType uint32
}

// NewReader validates the file header.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicLE:
		order = binary.LittleEndian
	case magicBE:
		order = binary.BigEndian
	default:
		return nil, ErrBadMagic
	}
	return &Reader{
		r:        r,
		order:    order,
		SnapLen:  int(order.Uint32(hdr[16:])),
		LinkType: order.Uint32(hdr[20:]),
	}, nil
}

// ReadPacket returns the next frame, or io.EOF at a clean end of stream.
func (pr *Reader) ReadPacket() (Packet, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(pr.r, hdr); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: packet header", ErrTruncated)
	}
	sec := pr.order.Uint32(hdr[0:])
	usec := pr.order.Uint32(hdr[4:])
	capLen := pr.order.Uint32(hdr[8:])
	origLen := pr.order.Uint32(hdr[12:])
	if capLen > 1<<26 {
		return Packet{}, fmt.Errorf("pcap: absurd capture length %d", capLen)
	}
	data, err := readExact(pr.r, int(capLen))
	if err != nil {
		return Packet{}, fmt.Errorf("%w: packet body", ErrTruncated)
	}
	return Packet{
		At:      time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

// readExact reads exactly n bytes, growing the buffer chunk by chunk so
// a crafted record header cannot force a large allocation before any
// body bytes have actually arrived.
func readExact(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	c := n
	if c > chunk {
		c = chunk
	}
	buf := make([]byte, 0, c)
	for len(buf) < n {
		m := n - len(buf)
		if m > chunk {
			m = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadAll drains the stream.
func (pr *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := pr.ReadPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
