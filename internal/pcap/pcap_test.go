package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"natpeek/internal/mac"
	"natpeek/internal/packet"
)

var t0 = time.Date(2013, 4, 1, 12, 0, 0, 123456000, time.UTC)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		{1, 2, 3, 4, 5},
		make([]byte, 1500),
		{},
	}
	for i, f := range frames {
		if err := w.WritePacket(Packet{At: t0.Add(time.Duration(i) * time.Second), Data: f}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet || r.SnapLen != 65535 {
		t.Fatalf("header %+v", r)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("packets = %d", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("packet %d data mismatch", i)
		}
		want := t0.Add(time.Duration(i) * time.Second).Truncate(time.Microsecond)
		if !p.At.Equal(want) {
			t.Fatalf("packet %d at %v, want %v", i, p.At, want)
		}
		if p.OrigLen != len(frames[i]) {
			t.Fatalf("packet %d origlen %d", i, p.OrigLen)
		}
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	w.WritePacket(Packet{At: t0, Data: make([]byte, 500)})
	r, _ := NewReader(&buf)
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 100 || p.OrigLen != 500 {
		t.Fatalf("caplen=%d origlen=%d", len(p.Data), p.OrigLen)
	}
}

func TestRealFramesAreValid(t *testing.T) {
	// Write real generated frames and reparse them with the packet codec
	// after the pcap round trip.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	bld := packet.NewBuilder(mac.MustParse("a4:b1:97:00:00:01"), mac.MustParse("20:4e:7f:00:00:01"))
	raw := bld.TCPv4(netip.MustParseAddr("192.168.1.10"), netip.MustParseAddr("8.8.8.8"),
		packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagSYN}, 64, []byte("hello"))
	w.WritePacket(Packet{At: t0, Data: raw})
	r, _ := NewReader(&buf)
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := packet.Decode(p.Data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TCP == nil || dec.TCP.DstPort != 443 {
		t.Fatal("frame corrupted through pcap")
	}
}

func TestBigEndianFilesReadable(t *testing.T) {
	// Hand-build a big-endian capture.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], magicLE) // written BE = read as BE magic
	binary.BigEndian.PutUint16(hdr[4:], versionMaj)
	binary.BigEndian.PutUint16(hdr[6:], versionMin)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:], uint32(t0.Unix()))
	binary.BigEndian.PutUint32(ph[8:], 3)
	binary.BigEndian.PutUint32(ph[12:], 3)
	buf.Write(ph)
	buf.Write([]byte{9, 9, 9})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 {
		t.Fatalf("caplen %d", len(p.Data))
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := bytes.NewReader(append([]byte{0xde, 0xad, 0xbe, 0xef}, make([]byte, 20)...))
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedStreams(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(Packet{At: t0, Data: []byte{1, 2, 3}})
	full := buf.Bytes()
	// Any strict prefix must error (or EOF exactly at a packet boundary).
	for n := 0; n < len(full); n++ {
		r, err := NewReader(bytes.NewReader(full[:n]))
		if err != nil {
			continue // header truncated: fine
		}
		_, err = r.ReadPacket()
		if err == nil {
			t.Fatalf("prefix %d parsed a packet", n)
		}
	}
	// The full stream ends with a clean EOF.
	r, _ := NewReader(bytes.NewReader(full))
	r.ReadPacket()
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestAbsurdLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w
	// Corrupt a packet header's caplen.
	w.WritePacket(Packet{At: t0, Data: []byte{1}})
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[24+8:], 1<<30)
	r, _ := NewReader(bytes.NewReader(b))
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 0)
		for i, p := range payloads {
			if len(p) > 4096 {
				p = p[:4096]
			}
			w.WritePacket(Packet{At: t0.Add(time.Duration(i) * time.Millisecond), Data: p})
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if len(p) > 4096 {
				p = p[:4096]
			}
			if !bytes.Equal(got[i].Data, p) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
