package pcap

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// FuzzReader fuzzes the capture-file parser. Properties:
//
//  1. NewReader/ReadAll never panic and never allocate unboundedly from
//     a crafted capture length.
//  2. Writer∘Reader is the identity on whatever the reader accepted:
//     re-writing the parsed packets with a non-truncating snap length
//     and re-reading yields the same data, original lengths, and (when
//     the timestamp fits the 32-bit epoch-seconds field) timestamps.
func FuzzReader(f *testing.F) {
	// A well-formed one-packet file built by this package's own writer.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		f.Fatal(err)
	}
	at := time.Date(2013, 4, 1, 0, 0, 0, 123000, time.UTC)
	if err := w.WritePacket(Packet{At: at, Data: []byte("\xde\xad\xbe\xef"), OrigLen: 60}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A header truncated mid-field.
	f.Add(buf.Bytes()[:10])
	// Big-endian magic with no packets.
	f.Add([]byte("\xa1\xb2\xc3\xd4\x00\x02\x00\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\x00\x00\x00\x01"))
	// A packet header promising more body than the file holds.
	f.Add(append(append([]byte{}, buf.Bytes()[:24]...),
		"\x80\xfa\x58\x51\x00\x00\x00\x00\xff\xff\x00\x00\xff\xff\x00\x00"...))

	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		pkts, err := r.ReadAll()
		if err != nil {
			return
		}
		var out bytes.Buffer
		// 1<<26 is the reader's own cap, so no accepted packet is ever
		// truncated on the re-write.
		w, err := NewWriter(&out, 1<<26)
		if err != nil {
			t.Fatalf("rewrite header: %v", err)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				t.Fatalf("rewrite packet: %v", err)
			}
		}
		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reread header: %v", err)
		}
		pkts2, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("reread packets: %v", err)
		}
		if len(pkts2) != len(pkts) {
			t.Fatalf("round trip: %d packets became %d", len(pkts), len(pkts2))
		}
		for i := range pkts {
			if !bytes.Equal(pkts[i].Data, pkts2[i].Data) {
				t.Fatalf("packet %d: data changed", i)
			}
			wantOrig := pkts[i].OrigLen
			if wantOrig < len(pkts[i].Data) {
				wantOrig = len(pkts[i].Data) // writer's documented clamp
			}
			if pkts2[i].OrigLen != wantOrig {
				t.Fatalf("packet %d: OrigLen %d, want %d", i, pkts2[i].OrigLen, wantOrig)
			}
			// Timestamps survive exactly when they fit the format's
			// unsigned 32-bit seconds field (parsed ones always have
			// sub-second < 1s, so only overflow can differ).
			if s := pkts[i].At.Unix(); s >= 0 && s <= math.MaxUint32 {
				if !pkts2[i].At.Equal(pkts[i].At) {
					t.Fatalf("packet %d: At %v became %v", i, pkts[i].At, pkts2[i].At)
				}
			}
		}
	})
}
