package pcap

import (
	"bytes"
	"testing"
	"time"
)

// TestWriterReaderRoundTrip drives Writer→Reader over the cases the
// capture path actually produces, including snap-length truncation and
// sub-second timestamps.
func TestWriterReaderRoundTrip(t *testing.T) {
	base := time.Date(2013, 4, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name    string
		snapLen int
		pkts    []Packet
		// want overrides the expected read-back packets; nil means the
		// input round-trips unchanged.
		want []Packet
	}{
		{name: "empty file", snapLen: 0, pkts: nil},
		{
			name:    "single frame",
			snapLen: 0,
			pkts:    []Packet{{At: base, Data: []byte{1, 2, 3, 4}, OrigLen: 4}},
		},
		{
			name:    "microsecond timestamps",
			snapLen: 0,
			pkts: []Packet{
				{At: base.Add(123 * time.Microsecond), Data: []byte{0xaa}, OrigLen: 1},
				{At: base.Add(999999 * time.Microsecond), Data: []byte{0xbb}, OrigLen: 1},
			},
		},
		{
			name:    "origlen clamp",
			snapLen: 0,
			pkts:    []Packet{{At: base, Data: []byte{1, 2, 3}, OrigLen: 0}},
			want:    []Packet{{At: base, Data: []byte{1, 2, 3}, OrigLen: 3}},
		},
		{
			name:    "snaplen truncation",
			snapLen: 8,
			pkts:    []Packet{{At: base, Data: bytes.Repeat([]byte{0xcc}, 100), OrigLen: 100}},
			want:    []Packet{{At: base, Data: bytes.Repeat([]byte{0xcc}, 8), OrigLen: 100}},
		},
		{
			name:    "many frames",
			snapLen: 65535,
			pkts: []Packet{
				{At: base, Data: []byte{1}, OrigLen: 1},
				{At: base.Add(time.Second), Data: bytes.Repeat([]byte{2}, 1500), OrigLen: 1500},
				{At: base.Add(2 * time.Second), Data: []byte{}, OrigLen: 0},
				{At: base.Add(3 * time.Second), Data: []byte{3, 3}, OrigLen: 60},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, tc.snapLen)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tc.pkts {
				if err := w.WritePacket(p); err != nil {
					t.Fatal(err)
				}
			}
			r, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if r.LinkType != LinkTypeEthernet {
				t.Fatalf("LinkType = %d", r.LinkType)
			}
			got, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			want := tc.want
			if want == nil {
				want = tc.pkts
			}
			if len(got) != len(want) {
				t.Fatalf("read %d packets, want %d", len(got), len(want))
			}
			for i := range want {
				if !got[i].At.Equal(want[i].At) {
					t.Errorf("packet %d: At = %v, want %v", i, got[i].At, want[i].At)
				}
				if !bytes.Equal(got[i].Data, want[i].Data) {
					t.Errorf("packet %d: data mismatch (%d vs %d bytes)", i, len(got[i].Data), len(want[i].Data))
				}
				if got[i].OrigLen != want[i].OrigLen {
					t.Errorf("packet %d: OrigLen = %d, want %d", i, got[i].OrigLen, want[i].OrigLen)
				}
			}
		})
	}
}

// TestReaderTruncatedStream checks every torn-file shape maps to a
// non-panicking error (or clean EOF), never a partial-record success.
func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	if err := w.WritePacket(Packet{At: at, Data: bytes.Repeat([]byte{7}, 40), OrigLen: 40}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		r, err := NewReader(bytes.NewReader(whole[:cut]))
		if err != nil {
			continue // header itself torn
		}
		if _, err := r.ReadAll(); err == nil && cut != 24 {
			t.Fatalf("cut at %d: torn packet read without error", cut)
		}
	}
}
