package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

func TestRealNow(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := time.Now()
	if b.Sub(a) < 0 || b.Sub(a) > time.Minute {
		t.Fatalf("Real.Now out of range: %v vs %v", a, b)
	}
}

func TestSimStartsAtEpoch(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", s.Now(), epoch)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(90 * time.Second)
	if got, want := s.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestSimAdvanceToPastIsNoop(t *testing.T) {
	s := NewSim(epoch)
	s.AdvanceTo(epoch.Add(-time.Hour))
	if !s.Now().Equal(epoch) {
		t.Fatalf("time moved backwards: %v", s.Now())
	}
}

func TestSimAfterFiresAtDeadline(t *testing.T) {
	s := NewSim(epoch)
	ch := s.After(10 * time.Minute)
	s.Advance(9 * time.Minute)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	s.Advance(time.Minute)
	select {
	case ts := <-ch:
		if !ts.Equal(epoch.Add(10 * time.Minute)) {
			t.Fatalf("fired at %v", ts)
		}
	default:
		t.Fatal("did not fire")
	}
}

func TestSimAfterNonPositiveFiresImmediately(t *testing.T) {
	s := NewSim(epoch)
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Fatal("After(<0) did not fire immediately")
	}
}

func TestSimAfterFuncOrder(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	s.AfterFunc(3*time.Second, func(time.Time) { got = append(got, 3) })
	s.AfterFunc(1*time.Second, func(time.Time) { got = append(got, 1) })
	s.AfterFunc(2*time.Second, func(time.Time) { got = append(got, 2) })
	s.Advance(5 * time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestSimEqualDeadlinesFireInRegistrationOrder(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.AfterFunc(time.Second, func(time.Time) { got = append(got, i) })
	}
	s.Advance(time.Second)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(epoch)
	var fired []string
	s.AfterFunc(time.Second, func(time.Time) {
		fired = append(fired, "outer")
		s.AfterFunc(time.Second, func(time.Time) {
			fired = append(fired, "inner")
		})
	})
	s.Advance(3 * time.Second)
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimNestedSchedulingBeyondWindowDoesNotFire(t *testing.T) {
	s := NewSim(epoch)
	inner := false
	s.AfterFunc(time.Second, func(time.Time) {
		s.AfterFunc(time.Hour, func(time.Time) { inner = true })
	})
	s.Advance(2 * time.Second)
	if inner {
		t.Fatal("inner fired before its deadline")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestSimAtAbsolute(t *testing.T) {
	s := NewSim(epoch)
	var at time.Time
	s.At(epoch.Add(42*time.Minute), func(now time.Time) { at = now })
	s.Run(epoch.Add(time.Hour))
	if !at.Equal(epoch.Add(42 * time.Minute)) {
		t.Fatalf("fired at %v", at)
	}
}

func TestSimRunStopsAtLimit(t *testing.T) {
	s := NewSim(epoch)
	fired := 0
	s.AfterFunc(time.Hour, func(time.Time) { fired++ })
	s.AfterFunc(48*time.Hour, func(time.Time) { fired++ })
	end := s.Run(epoch.Add(24 * time.Hour))
	if fired != 1 {
		t.Fatalf("fired %d timers, want 1", fired)
	}
	if !end.Equal(epoch.Add(24 * time.Hour)) {
		t.Fatalf("Run returned %v", end)
	}
}

func TestSimRunDrainsAll(t *testing.T) {
	s := NewSim(epoch)
	n := 0
	for i := 1; i <= 10; i++ {
		s.AfterFunc(time.Duration(i)*time.Minute, func(time.Time) { n++ })
	}
	s.Run(time.Time{}.AddDate(3000, 0, 0))
	if n != 10 {
		t.Fatalf("fired %d, want 10", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestSimSleepUnblocksOnAdvance(t *testing.T) {
	s := NewSim(epoch)
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		s.Sleep(time.Minute)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for s.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Advance(2 * time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never unblocked")
	}
	wg.Wait()
}

func TestSimManyTimersStaySorted(t *testing.T) {
	s := NewSim(epoch)
	var prev time.Time
	ok := true
	// Insert in a scrambled deterministic order.
	for i := 0; i < 500; i++ {
		d := time.Duration((i*7919)%1000) * time.Second
		s.AfterFunc(d, func(now time.Time) {
			if now.Before(prev) {
				ok = false
			}
			prev = now
		})
	}
	s.Advance(1000 * time.Second)
	if !ok {
		t.Fatal("timers fired out of order")
	}
}
