// Package clock provides an abstraction over time so that the measurement
// platform can run both against the wall clock (real deployments over real
// sockets) and against a deterministic simulated clock (the synthetic world
// that stands in for the paper's 126-home deployment).
//
// The simulated clock is driven explicitly: time only moves when Advance or
// Run is called, and all timers fire in timestamp order. This makes every
// experiment reproducible from a seed.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the platform.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Sim is a deterministic simulated clock. Time advances only via Advance,
// AdvanceTo, or Run. Timers registered with After fire, in order, as time
// passes them. Sim is safe for concurrent use, but deterministic replay is
// only guaranteed when a single goroutine drives Advance.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
	seq     uint64 // tie-break so equal deadlines fire in registration order
}

type simWaiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time
	fn       func(time.Time)
}

// NewSim returns a simulated clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks the Advance loop.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.insertLocked(&simWaiter{deadline: s.now.Add(d), seq: s.seq, ch: ch})
	return ch
}

// AfterFunc schedules fn to run (synchronously, inside the Advance call)
// once d has elapsed. It is the workhorse of the discrete-event layer.
func (s *Sim) AfterFunc(d time.Duration, fn func(now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 {
		d = 0
	}
	s.insertLocked(&simWaiter{deadline: s.now.Add(d), seq: s.seq, fn: fn})
}

// At schedules fn at an absolute instant. Instants in the past fire on the
// next Advance.
func (s *Sim) At(t time.Time, fn func(now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(&simWaiter{deadline: t, seq: s.seq, fn: fn})
}

func (s *Sim) insertLocked(w *simWaiter) {
	s.seq++
	w.seq = s.seq
	i := sort.Search(len(s.waiters), func(i int) bool {
		wi := s.waiters[i]
		if wi.deadline.Equal(w.deadline) {
			return wi.seq > w.seq
		}
		return wi.deadline.After(w.deadline)
	})
	s.waiters = append(s.waiters, nil)
	copy(s.waiters[i+1:], s.waiters[i:])
	s.waiters[i] = w
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline. Sleeping on a Sim from the driving goroutine
// deadlocks by design — use AfterFunc there instead.
func (s *Sim) Sleep(d time.Duration) { <-s.After(d) }

// Advance moves simulated time forward by d, firing every timer whose
// deadline falls inside the window, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves simulated time to target (no-op if target is in the past),
// firing timers in order. Timers scheduled by firing callbacks that land
// inside the window also fire during the same call.
func (s *Sim) AdvanceTo(target time.Time) {
	for {
		s.mu.Lock()
		if len(s.waiters) == 0 || s.waiters[0].deadline.After(target) {
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return
		}
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.deadline.After(s.now) {
			s.now = w.deadline
		}
		now := s.now
		s.mu.Unlock()
		if w.ch != nil {
			w.ch <- now
		}
		if w.fn != nil {
			w.fn(now)
		}
	}
}

// Run advances the clock until no timers remain or until the optional limit
// is reached. It returns the final simulated time.
func (s *Sim) Run(limit time.Time) time.Time {
	for {
		s.mu.Lock()
		if len(s.waiters) == 0 {
			s.mu.Unlock()
			return s.Now()
		}
		next := s.waiters[0].deadline
		s.mu.Unlock()
		if !limit.IsZero() && next.After(limit) {
			s.AdvanceTo(limit)
			return s.Now()
		}
		s.AdvanceTo(next)
	}
}

// Pending reports the number of unfired timers.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
