package figures

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/segment"
)

// Dashboard maintains a continuously-updating view of every paper
// exhibit over a segment store. Sealed segments stream in exactly once
// through the store's subscription and fold into a mergeable
// analysis.Partial; a render clones the partial, folds the store's live
// tail on top, and regenerates the figures from the projection — it
// never re-reads sealed history. The rendered output is bit-identical
// to running the batch figures over the store's full merged view (see
// the analysis.Partial package comment for the exactness argument).
type Dashboard struct {
	src *segment.Store
	win Windows

	mu     sync.Mutex
	base   *analysis.Partial
	sealed int // chunks folded into base

	lastRender   time.Duration
	renderedOnce bool
}

// NewDashboard subscribes to src and folds all existing segments
// immediately.
func NewDashboard(src *segment.Store, w Windows) (*Dashboard, error) {
	d := &Dashboard{src: src, win: w, base: analysis.NewPartial()}
	if err := src.Subscribe(d.fold); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dashboard) fold(chunk *dataset.Store) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.base.Fold(chunk)
	d.sealed++
}

// snapshot produces a consistent projected store: sealed chunks 1..n
// plus the live tail, with no chunk counted twice or dropped. If a seal
// lands between cloning the base and reading the tail (the chunk would
// be missing from both), the loop retries on the fresh state.
func (d *Dashboard) snapshot() (*dataset.Store, *analysis.Partial) {
	for {
		d.mu.Lock()
		p := d.base.Clone()
		n := d.sealed
		d.mu.Unlock()
		tail := d.src.Tail()
		d.mu.Lock()
		moved := d.sealed != n
		d.mu.Unlock()
		if moved {
			continue
		}
		p.Fold(tail)
		return p.Store(d.src.HeartbeatLog()), p
	}
}

// Render regenerates every exhibit from the current projection.
func (d *Dashboard) Render() []*Report {
	start := time.Now()
	st, _ := d.snapshot()
	out := All(st, d.win)
	d.mu.Lock()
	d.lastRender = time.Since(start)
	d.renderedOnce = true
	d.mu.Unlock()
	return out
}

// Stats describes the dashboard's incremental state.
type DashboardStats struct {
	SealedChunks   int               `json:"sealed_chunks"`
	Segments       int               `json:"segments"`
	Rows           dataset.RowCounts `json:"rows"`
	RawFlowRows    int               `json:"raw_flow_rows"`
	FlowAggregates int               `json:"flow_aggregates"`
	LastRenderMs   float64           `json:"last_render_ms"`
}

// Stats reports fold/render diagnostics (tail rows excluded).
func (d *Dashboard) Stats() DashboardStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DashboardStats{
		SealedChunks:   d.sealed,
		Segments:       len(d.src.Segments()),
		Rows:           d.base.Rows(),
		RawFlowRows:    d.base.RawFlowRows(),
		FlowAggregates: d.base.FlowAggregates(),
		LastRenderMs:   float64(d.lastRender.Microseconds()) / 1000,
	}
}

// Register mounts the dashboard on mux: GET /figures renders the
// exhibits as text, GET /api/figures returns them as JSON alongside the
// incremental-state diagnostics.
func (d *Dashboard) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /figures", func(w http.ResponseWriter, r *http.Request) {
		reports := d.Render()
		s := d.Stats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "natpeek figures — incremental render over %d sealed chunks (%d segment files)\n",
			s.SealedChunks, s.Segments)
		fmt.Fprintf(w, "projection: %d raw flow rows collapsed to %d aggregates; render took %.1fms\n\n",
			s.RawFlowRows, s.FlowAggregates, s.LastRenderMs)
		for _, rep := range reports {
			fmt.Fprintln(w, rep.String())
		}
	})
	mux.HandleFunc("GET /api/figures", func(w http.ResponseWriter, r *http.Request) {
		type apiReport struct {
			ID         string   `json:"id"`
			Title      string   `json:"title"`
			PaperClaim string   `json:"paper_claim,omitempty"`
			Lines      []string `json:"lines"`
		}
		reports := d.Render()
		out := struct {
			Stats   DashboardStats `json:"stats"`
			Reports []apiReport    `json:"reports"`
		}{Stats: d.Stats()}
		for _, rep := range reports {
			out.Reports = append(out.Reports, apiReport{
				ID: rep.ID, Title: rep.Title, PaperClaim: rep.PaperClaim, Lines: rep.Lines,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}
