package figures

import (
	"strings"
	"sync"
	"testing"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/stats"
	"natpeek/internal/world"
)

// The figure tests run one mid-scale deployment and verify the paper's
// qualitative claims hold — this is the reproduction's core regression
// suite. The world is built once and shared (read-only) across tests.
var (
	once    sync.Once
	testW   *world.World
	testWin Windows
)

func study(t testing.TB) (*dataset.Store, Windows) {
	t.Helper()
	once.Do(func() {
		w := world.Build(world.Config{Seed: 7, Scale: 0.4, TrafficHomes: 10})
		if err := w.Run(); err != nil {
			panic(err)
		}
		testW = w
		testWin = DefaultWindows()
	})
	return testW.Store, testWin
}

func TestAllReportsNonEmpty(t *testing.T) {
	st, w := study(t)
	reports := All(st, w)
	if len(reports) != 21 {
		t.Fatalf("exhibits = %d, want 21", len(reports))
	}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("malformed report %+v", r)
		}
		if len(r.Lines) == 0 {
			t.Errorf("%s: no lines", r.ID)
		}
		s := r.String()
		if !strings.Contains(s, r.ID) {
			t.Errorf("%s: String() missing ID", r.ID)
		}
		if strings.Contains(s, "(no data)") || strings.Contains(s, "(no traffic data)") ||
			strings.Contains(s, "(no device data)") || strings.Contains(s, "(no samples)") {
			t.Errorf("%s: degenerate output:\n%s", r.ID, s)
		}
	}
}

func TestFig3DevelopedVsDeveloping(t *testing.T) {
	st, w := study(t)
	rates := analysis.DowntimesPerDayByGroup(st, w.Availability)
	devMed := stats.Median(rates[analysis.Developed])
	dvgMed := stats.Median(rates[analysis.Developing])
	// Paper: developed median < 1/30 per day; developing > ~1/3 per day.
	if devMed > 0.15 {
		t.Fatalf("developed median %.3f/day too high", devMed)
	}
	if dvgMed < 0.3 {
		t.Fatalf("developing median %.3f/day too low", dvgMed)
	}
	if dvgMed < 8*devMed {
		t.Fatalf("group separation too weak: %.3f vs %.3f", devMed, dvgMed)
	}
}

func TestFig4MedianDurationAboutHalfHour(t *testing.T) {
	st, w := study(t)
	durs := analysis.DowntimeDurationsByGroup(st, w.Availability)
	all := append(append([]float64{}, durs[analysis.Developed]...), durs[analysis.Developing]...)
	med := stats.Median(all) / 60
	// Paper: ≈30 minutes.
	if med < 12 || med > 90 {
		t.Fatalf("median downtime %.1f min, want ≈30", med)
	}
	// Developing tail longer.
	if stats.Quantile(durs[analysis.Developing], 0.9) <= stats.Quantile(durs[analysis.Developed], 0.9) {
		t.Fatal("developing tail not longer")
	}
}

func TestFig5PoorestCountriesWorst(t *testing.T) {
	st, w := study(t)
	pts := analysis.DowntimesByCountry(st, w.Availability, 3)
	if len(pts) < 4 {
		t.Fatalf("only %d countries with ≥3 routers", len(pts))
	}
	byCode := map[string]analysis.CountryDowntime{}
	for _, p := range pts {
		byCode[p.Code] = p
	}
	in, us := byCode["IN"], byCode["US"]
	pk, ok := byCode["PK"]
	if !ok {
		t.Skip("PK below router threshold at this scale")
	}
	if in.MedianDowntimes <= us.MedianDowntimes || pk.MedianDowntimes <= us.MedianDowntimes {
		t.Fatalf("IN/PK not worse than US: %v %v %v", in, pk, us)
	}
	days := w.Availability.To.Sub(w.Availability.From).Hours() / 24
	pkPerDay := pk.MedianDowntimes / days
	if pkPerDay < 0.8 || pkPerDay > 4 {
		t.Fatalf("PK downtimes/day = %.2f, paper ≈2", pkPerDay)
	}
}

func TestFig6UptimeMedians(t *testing.T) {
	st, w := study(t)
	us := analysis.MedianUptimeFraction(st, "US", w.Availability)
	in := analysis.MedianUptimeFraction(st, "IN", w.Availability)
	za := analysis.MedianUptimeFraction(st, "ZA", w.Availability)
	if us < 0.95 {
		t.Fatalf("US uptime %.3f (paper 0.9825)", us)
	}
	if in < 0.6 || in > 0.9 {
		t.Fatalf("IN uptime %.3f (paper 0.7601)", in)
	}
	if za < 0.73 || za > 0.96 {
		t.Fatalf("ZA uptime %.3f (paper 0.8557)", za)
	}
	if !(us > za && za > in) {
		t.Fatalf("ordering broken: %.3f / %.3f / %.3f", us, za, in)
	}
}

func TestFig6FindsAllThreeModes(t *testing.T) {
	st, w := study(t)
	r := Fig6(st, w)
	out := r.String()
	for _, m := range []string{"always-on", "appliance"} {
		if !strings.Contains(out, m) {
			t.Errorf("mode %s missing from Fig 6 output", m)
		}
	}
}

func TestFig7DeviceCounts(t *testing.T) {
	st, _ := study(t)
	uniq := analysis.UniqueDevicesPerHome(st)
	var xs []float64
	atLeast5 := 0
	for _, n := range uniq {
		xs = append(xs, float64(n))
		if n >= 5 {
			atLeast5++
		}
	}
	mean := stats.Mean(xs)
	if mean < 4.5 || mean > 9.5 {
		t.Fatalf("mean devices %.2f, paper ≈7", mean)
	}
	if frac := float64(atLeast5) / float64(len(xs)); frac < 0.5 {
		t.Fatalf("share ≥5 devices %.2f, paper >0.5", frac)
	}
}

func TestFig8WirelessDominatesAndDevelopedRicher(t *testing.T) {
	st, _ := study(t)
	byGroup := analysis.ConnectedByGroup(st)
	dev, dvg := byGroup[analysis.Developed], byGroup[analysis.Developing]
	if dev.Wireless.Mean <= dev.Wired.Mean || dvg.Wireless.Mean <= dvg.Wired.Mean {
		t.Fatal("wireless does not dominate wired")
	}
	if dev.Wired.Mean+dev.Wireless.Mean <= dvg.Wired.Mean+dvg.Wireless.Mean {
		t.Fatal("developed homes not richer in connected devices")
	}
	if dev.Wired.Mean <= dvg.Wired.Mean {
		t.Fatal("wired gap not larger in developed")
	}
	// §5.2: average wired ports used < 1 in both groups.
	if dev.Wired.Mean >= 2 || dvg.Wired.Mean >= 1 {
		t.Fatalf("wired averages too high: %.2f / %.2f", dev.Wired.Mean, dvg.Wired.Mean)
	}
}

func TestFig9Band24Dominates(t *testing.T) {
	st, _ := study(t)
	byGroup := analysis.ConnectedByGroup(st)
	for g, a := range byGroup {
		if a.W24.Mean <= a.W5.Mean {
			t.Fatalf("%v: 2.4 GHz (%.2f) not above 5 GHz (%.2f)", g, a.W24.Mean, a.W5.Mean)
		}
	}
}

func TestTable5AlwaysConnected(t *testing.T) {
	st, _ := study(t)
	shares := analysis.AlwaysConnected(st, 35*24*3600*1e9)
	dev := shares[analysis.Developed]
	dvg := shares[analysis.Developing]
	if dev.Homes == 0 || dvg.Homes == 0 {
		t.Fatal("groups empty")
	}
	// Paper: 43%/20% developed, 12%/12% developing.
	if dev.WiredShare < 0.2 || dev.WiredShare > 0.7 {
		t.Fatalf("developed wired share %.2f, paper 0.43", dev.WiredShare)
	}
	if dvg.WiredShare >= dev.WiredShare {
		t.Fatalf("developing wired share %.2f not below developed %.2f", dvg.WiredShare, dev.WiredShare)
	}
}

func TestFig10BandMedians(t *testing.T) {
	st, _ := study(t)
	b24, b5 := analysis.UniqueDevicesPerBand(st)
	m24, m5 := stats.Median(b24), stats.Median(b5)
	if m24 < 3 || m24 > 8 {
		t.Fatalf("2.4 GHz median %v, paper ≈5", m24)
	}
	if m5 > 3.5 {
		t.Fatalf("5 GHz median %v, paper ≈2", m5)
	}
	if m24 <= m5 {
		t.Fatal("band ordering broken")
	}
}

func TestFig11APMediansByGroup(t *testing.T) {
	st, _ := study(t)
	byGroup := analysis.VisibleAPsByGroup(st)
	devMed := stats.Median(byGroup[analysis.Developed])
	dvgMed := stats.Median(byGroup[analysis.Developing])
	if devMed < 8 || devMed > 32 {
		t.Fatalf("developed AP median %v, paper ≈20", devMed)
	}
	if dvgMed > 6 {
		t.Fatalf("developing AP median %v, paper ≈2", dvgMed)
	}
}

func TestFig12AppleOnTop(t *testing.T) {
	st, _ := study(t)
	hist := analysis.ManufacturerHistogram(st, 100_000)
	if len(hist) < 5 {
		t.Fatalf("only %d manufacturer categories", len(hist))
	}
	// Paper: Apple most common; Netgear excluded entirely.
	if hist[0].Category != "Apple" {
		t.Fatalf("top category %v, paper says Apple", hist[0].Category)
	}
	for _, h := range hist {
		if h.Category == "Gateway" && h.Devices > hist[0].Devices {
			t.Fatal("gateway devices dominate — Netgear exclusion broken?")
		}
	}
}

func TestFig13WeekdayMoreDiurnal(t *testing.T) {
	st, _ := study(t)
	weekday, weekend := analysis.DiurnalDevices(st)
	wd, we := weekday.PeakToTroughRatio(), weekend.PeakToTroughRatio()
	if wd <= we {
		t.Fatalf("weekday ratio %.2f not above weekend %.2f", wd, we)
	}
	if wd < 1.15 {
		t.Fatalf("weekday barely diurnal: %.2f", wd)
	}
}

func TestFig15MostHomesUnderHalf(t *testing.T) {
	st, _ := study(t)
	sats := analysis.Saturation(st)
	if len(sats) == 0 {
		t.Fatal("no saturation points")
	}
	var downUtils []float64
	for _, s := range sats {
		if s.Dir == "down" {
			downUtils = append(downUtils, s.Utilization)
		}
	}
	under := 0
	for _, u := range downUtils {
		if u < 0.5 {
			under++
		}
	}
	if frac := float64(under) / float64(len(downUtils)); frac < 0.5 {
		t.Fatalf("only %.0f%% of homes under 50%% downlink utilization", frac*100)
	}
}

func TestFig17DominantDevice(t *testing.T) {
	st, _ := study(t)
	top := analysis.MeanTopDeviceShare(st, 3)
	if top < 0.45 || top > 0.85 {
		t.Fatalf("mean top-device share %.2f, paper ≈0.60–0.65", top)
	}
}

func TestFig18ExpectedDomainsPresent(t *testing.T) {
	st, _ := study(t)
	pop := analysis.PopularDomains(st)
	names := map[string]bool{}
	for _, p := range pop {
		names[p.Domain] = true
	}
	hits := 0
	for _, d := range []string{"google.com", "youtube.com", "facebook.com", "netflix.com", "hulu.com", "pandora.com"} {
		if names[d] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("only %d of the expected popular domains appear", hits)
	}
	if len(pop) < 15 {
		t.Fatalf("domain tail too short: %d", len(pop))
	}
}

func TestFig19VolumeVsConnections(t *testing.T) {
	st, _ := study(t)
	curves := analysis.DomainShares(st, 10)
	top := curves.VolumeShare[0]
	if top < 0.2 || top > 0.6 {
		t.Fatalf("top domain volume share %.2f, paper ≈0.38", top)
	}
	if curves.ConnShareByVolRank[0] >= top {
		t.Fatalf("top-by-volume conn share %.2f not below volume share %.2f",
			curves.ConnShareByVolRank[0], top)
	}
	wl := analysis.WhitelistedVolumeShare(st)
	if wl < 0.5 || wl > 0.8 {
		t.Fatalf("whitelisted volume share %.2f, paper ≈0.65", wl)
	}
}

func TestFig20DistinctFingerprints(t *testing.T) {
	st, _ := study(t)
	r := Fig20(st)
	if len(r.Lines) < 2 {
		t.Fatalf("need ≥2 device mixes, got %d", len(r.Lines))
	}
}
