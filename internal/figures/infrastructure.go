package figures

import (
	"fmt"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/stats"
)

// Fig7 reproduces the devices-per-home CDF.
func Fig7(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 7",
		Title:      "Number of unique devices per home network",
		PaperClaim: "more than half of homes have ≥5 devices; ≈7 devices on average",
	}
	uniq := analysis.UniqueDevicesPerHome(st)
	var xs []float64
	atLeast5 := 0
	for _, id := range sortedKeys(uniq) {
		n := uniq[id]
		xs = append(xs, float64(n))
		if n >= 5 {
			atLeast5++
		}
	}
	if len(xs) == 0 {
		r.add("(no device data)")
		return r
	}
	r.add("homes=%d  CDF: %s", len(xs), cdfLine(xs, ""))
	r.add("mean=%.2f  share with ≥5 devices=%.0f%%",
		stats.Mean(xs), 100*float64(atLeast5)/float64(len(xs)))
	return r
}

// Fig8 reproduces the connected wired/wireless averages per group.
func Fig8(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 8",
		Title:      "Average devices connected at any time (wired vs wireless, by group)",
		PaperClaim: "wireless > wired in both groups; developed ≈1 more device overall, gap larger for wired",
	}
	byGroup := analysis.ConnectedByGroup(st)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		a := byGroup[g]
		r.add("%-10s wired=%.2f±%.2f  wireless=%.2f±%.2f  total=%.2f",
			g, a.Wired.Mean, a.Wired.Stddev, a.Wireless.Mean, a.Wireless.Stddev,
			a.Wired.Mean+a.Wireless.Mean)
	}
	return r
}

// Fig9 reproduces the per-band connected averages.
func Fig9(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 9",
		Title:      "Average wireless devices connected per spectrum, by group",
		PaperClaim: "significantly more devices on 2.4 GHz than on 5 GHz",
	}
	byGroup := analysis.ConnectedByGroup(st)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		a := byGroup[g]
		r.add("%-10s 2.4GHz=%.2f±%.2f  5GHz=%.2f±%.2f",
			g, a.W24.Mean, a.W24.Stddev, a.W5.Mean, a.W5.Stddev)
	}
	return r
}

// Table5 reproduces the always-connected household shares.
func Table5(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Table 5",
		Title:      "Households with a device that never disconnects (≥5 weeks)",
		PaperClaim: "developed: 43% wired / 20% wireless; developing: 12% / 12%",
	}
	shares := analysis.AlwaysConnected(st, 35*24*time.Hour)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		s := shares[g]
		r.add("%-10s homes=%-4d always-wired=%d (%.0f%%)  always-wireless=%d (%.0f%%)",
			g, s.Homes, s.WithWired, 100*s.WiredShare, s.WithWireless, 100*s.WirelessShare)
	}
	return r
}

// Fig10 reproduces the unique-devices-per-band CDF.
func Fig10(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 10",
		Title:      "Unique devices seen per wireless spectrum",
		PaperClaim: "median ≈5 devices on 2.4 GHz, ≈2 on 5 GHz",
	}
	b24, b5 := analysis.UniqueDevicesPerBand(st)
	if len(b24) == 0 {
		r.add("(no data)")
		return r
	}
	r.add("2.4GHz CDF: %s  median=%.1f", cdfLine(b24, ""), stats.Median(b24))
	r.add("5GHz   CDF: %s  median=%.1f", cdfLine(b5, ""), stats.Median(b5))
	return r
}

// Fig11 reproduces the visible-APs CDF.
func Fig11(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 11",
		Title:      "Access points visible on 2.4 GHz, by group",
		PaperClaim: "developed median ≈20, bimodal (very few or a lot); developing median ≈2",
	}
	byGroup := analysis.VisibleAPsByGroup(st)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		xs := byGroup[g]
		if len(xs) == 0 {
			r.add("%-10s (no scans)", g)
			continue
		}
		r.add("%-10s homes=%-4d CDF: %s  median=%.1f",
			g, len(xs), cdfLine(xs, ""), stats.Median(xs))
	}
	r.add("all-4-ethernet-ports share: developed=%.0f%% developing=%.0f%% (paper: 9%% both)",
		100*analysis.AllFourPortsShare(st, analysis.Developed),
		100*analysis.AllFourPortsShare(st, analysis.Developing))
	return r
}

// Fig12 reproduces the manufacturer histogram.
func Fig12(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 12",
		Title:      "Devices by manufacturer/type in the Traffic homes (≥100 KB, Netgear removed)",
		PaperClaim: "Apple most common, then Intel; Samsung and smart phones also common",
	}
	hist := analysis.ManufacturerHistogram(st, 100_000)
	if len(hist) == 0 {
		r.add("(no traffic data)")
		return r
	}
	for _, h := range hist {
		r.add("%-16s %3d %s", h.Category, h.Devices, bar(h.Devices))
	}
	return r
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Fig13 reproduces the diurnal device-count curves.
func Fig13(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 13",
		Title:      "Mean wireless devices online by local hour (weekday vs weekend)",
		PaperClaim: "weekday clearly diurnal (evening peak, afternoon trough); weekend flatter",
	}
	weekday, weekend := analysis.DiurnalDevices(st)
	r.add("weekday: %s", hourSeries(weekday))
	r.add("weekend: %s", hourSeries(weekend))
	r.add("peak/trough ratio: weekday=%.2f weekend=%.2f",
		weekday.PeakToTroughRatio(), weekend.PeakToTroughRatio())
	return r
}

func hourSeries(h stats.HourBins) string {
	means := h.Means()
	parts := make([]string, 0, 8)
	for _, hr := range []int{0, 3, 6, 9, 12, 15, 18, 21} {
		parts = append(parts, fmt.Sprintf("%02d:00=%.2f", hr, means[hr]))
	}
	return fmt.Sprintf("%v", parts)
}
