package figures

import (
	"fmt"
	"testing"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/segment"
)

// chunkStores splits st into n contiguous chunks per row kind,
// simulating the sealed-segment stream. The full roster rides in the
// first chunk so incremental folds resolve countries exactly like the
// batch pass does.
func chunkStores(st *dataset.Store, n int) []*dataset.Store {
	out := make([]*dataset.Store, n)
	for i := range out {
		out[i] = &dataset.Store{RouterCountry: map[string]string{}}
	}
	for id, c := range st.RouterCountry {
		out[0].RouterCountry[id] = c
	}
	span := func(l, i int) (int, int) { return i * l / n, (i + 1) * l / n }
	for i := 0; i < n; i++ {
		lo, hi := span(len(st.Uptime), i)
		out[i].Uptime = st.Uptime[lo:hi]
		lo, hi = span(len(st.Capacity), i)
		out[i].Capacity = st.Capacity[lo:hi]
		lo, hi = span(len(st.Counts), i)
		out[i].Counts = st.Counts[lo:hi]
		lo, hi = span(len(st.Sightings), i)
		out[i].Sightings = st.Sightings[lo:hi]
		lo, hi = span(len(st.WiFi), i)
		out[i].WiFi = st.WiFi[lo:hi]
		lo, hi = span(len(st.Flows), i)
		out[i].Flows = st.Flows[lo:hi]
		lo, hi = span(len(st.Throughput), i)
		out[i].Throughput = st.Throughput[lo:hi]
	}
	return out
}

func renderAll(st *dataset.Store, w Windows) []string {
	var out []string
	for _, r := range All(st, w) {
		out = append(out, r.String())
	}
	out = append(out, ExtUsageByCountry(st).String())
	return out
}

func diffReports(t *testing.T, want, got []string, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d reports vs %d", what, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: report %d differs:\n--- batch ---\n%s\n--- incremental ---\n%s",
				what, i, want[i], got[i])
		}
	}
}

// TestPartialEquivalence is the core incremental-equals-batch claim:
// folding the study's rows chunk-by-chunk into a Partial and rendering
// from the projection reproduces every exhibit byte-for-byte, real
// heartbeat figures included.
func TestPartialEquivalence(t *testing.T) {
	st, w := study(t)
	batch := renderAll(st, w)

	p := analysis.NewPartial()
	for _, c := range chunkStores(st, 7) {
		p.Fold(c)
	}
	if p.FlowAggregates() >= p.RawFlowRows() {
		t.Fatalf("flow projection did not compress: %d aggregates from %d rows",
			p.FlowAggregates(), p.RawFlowRows())
	}
	diffReports(t, batch, renderAll(p.Store(st.Heartbeats), w), "sequential fold")

	// Mergeability: two independently-accumulated partials combine into
	// the same state.
	chunks := chunkStores(st, 7)
	p1, p2 := analysis.NewPartial(), analysis.NewPartial()
	for _, c := range chunks[:3] {
		p1.Fold(c)
	}
	for _, c := range chunks[3:] {
		p2.Fold(c)
	}
	p1.Merge(p2)
	diffReports(t, batch, renderAll(p1.Store(st.Heartbeats), w), "merged partials")

	// Clone independence: folding the tail into a clone leaves the base
	// renderable and unchanged.
	base := analysis.NewPartial()
	for _, c := range chunks[:6] {
		base.Fold(c)
	}
	before := renderAll(base.Store(st.Heartbeats), w)
	cl := base.Clone()
	cl.Fold(chunks[6])
	diffReports(t, batch, renderAll(cl.Store(st.Heartbeats), w), "clone+tail")
	diffReports(t, before, renderAll(base.Store(st.Heartbeats), w), "base after clone fold")
}

// feedChunks drives the same chunked upload sequence into any ingest
// store, optionally flushing between chunks.
func feedChunks(s dataset.IngestStore, chunks []*dataset.Store, flush func()) {
	for i, c := range chunks {
		c := c
		s.Append("feeder", func(dst *dataset.Store) {
			for id, code := range c.RouterCountry {
				dst.RouterCountry[id] = code
			}
			dst.Uptime = append(dst.Uptime, c.Uptime...)
			dst.Capacity = append(dst.Capacity, c.Capacity...)
			dst.Counts = append(dst.Counts, c.Counts...)
			dst.Sightings = append(dst.Sightings, c.Sightings...)
			dst.WiFi = append(dst.WiFi, c.WiFi...)
			dst.Flows = append(dst.Flows, c.Flows...)
			dst.Throughput = append(dst.Throughput, c.Throughput...)
		})
		if flush != nil && i < len(chunks)-1 {
			flush()
		}
	}
}

// TestDashboardMatchesBatch is the end-to-end plumbing check: the same
// upload sequence through a segment store with a live Dashboard renders
// identically to the batch figures over a plain sharded store. The last
// chunk is left unflushed so the render exercises the live-tail fold.
func TestDashboardMatchesBatch(t *testing.T) {
	st, w := study(t)
	chunks := chunkStores(st, 5)

	plain := dataset.NewSharded(0)
	feedChunks(plain, chunks, nil)

	seg, err := segment.Open(segment.Options{Dir: t.TempDir(), FlushRows: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	d, err := NewDashboard(seg, w)
	if err != nil {
		t.Fatal(err)
	}
	feedChunks(seg, chunks, func() {
		if err := seg.Flush(); err != nil {
			t.Fatal(err)
		}
	})

	// Both heartbeat logs are empty (heartbeats arrive over UDP, not
	// uploads), so the comparison spans the row-backed exhibits.
	batchStore := plain.Merge()
	batch := renderAll(batchStore, w)

	stats := d.Stats()
	if stats.SealedChunks != 4 {
		t.Fatalf("sealed chunks = %d, want 4", stats.SealedChunks)
	}
	var inc []string
	for _, r := range d.Render() {
		inc = append(inc, r.String())
	}
	snap, part := dashboardSnapshot(d)
	inc = append(inc, ExtUsageByCountry(snap).String())
	diffReports(t, batch, inc, "dashboard vs batch")

	if part.RawFlowRows() != len(batchStore.Flows) {
		t.Fatalf("dashboard folded %d flow rows, batch has %d",
			part.RawFlowRows(), len(batchStore.Flows))
	}
}

// dashboardSnapshot exposes the projection for the extension exhibit.
func dashboardSnapshot(d *Dashboard) (*dataset.Store, *analysis.Partial) {
	return d.snapshot()
}

// TestDashboardStatsShape sanity-checks the diagnostics payload.
func TestDashboardStatsShape(t *testing.T) {
	st, w := study(t)
	seg, err := segment.Open(segment.Options{Dir: t.TempDir(), FlushRows: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	d, err := NewDashboard(seg, w)
	if err != nil {
		t.Fatal(err)
	}
	feedChunks(seg, chunkStores(st, 3), func() {
		if err := seg.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	d.Render()
	s := d.Stats()
	if s.SealedChunks != 2 || s.Segments != 2 {
		t.Fatalf("stats %+v: want 2 sealed chunks over 2 segments", s)
	}
	if s.Rows.Flows == 0 || s.FlowAggregates == 0 {
		t.Fatalf("stats %+v: empty projection", s)
	}
	if fmt.Sprintf("%.1f", s.LastRenderMs) == "" {
		t.Fatal("unreachable")
	}
}
