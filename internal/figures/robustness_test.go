package figures

import (
	"testing"

	"natpeek/internal/analysis"
	"natpeek/internal/stats"
	"natpeek/internal/world"
)

// TestClaimsHoldAcrossSeeds guards against seed-1 luck: the paper's core
// qualitative claims must hold for several independent seeds.
func TestClaimsHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness sweep")
	}
	for _, seed := range []uint64{2, 5, 11} {
		seed := seed
		w := world.Build(world.Config{Seed: seed, Scale: 0.25, TrafficHomes: 6})
		if err := w.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := w.Store
		win := DefaultWindows().Availability

		// Availability: developing ≫ developed downtime frequency.
		rates := analysis.DowntimesPerDayByGroup(st, win)
		devMed := stats.Median(rates[analysis.Developed])
		dvgMed := stats.Median(rates[analysis.Developing])
		if dvgMed < 5*devMed {
			t.Errorf("seed %d: downtime separation weak: %.3f vs %.3f", seed, devMed, dvgMed)
		}

		// Infrastructure: wireless > wired; 2.4 > 5 GHz.
		conn := analysis.ConnectedByGroup(st)
		for g, a := range conn {
			if a.Wireless.Mean <= a.Wired.Mean {
				t.Errorf("seed %d %v: wireless %.2f ≤ wired %.2f", seed, g, a.Wireless.Mean, a.Wired.Mean)
			}
			if a.W24.Mean <= a.W5.Mean {
				t.Errorf("seed %d %v: band ordering broken", seed, g)
			}
		}

		// Spectrum crowding: developed sees more APs.
		aps := analysis.VisibleAPsByGroup(st)
		if stats.Median(aps[analysis.Developed]) <= stats.Median(aps[analysis.Developing]) {
			t.Errorf("seed %d: AP crowding ordering broken", seed)
		}

		// Usage: dominant device and volume/connection disproportionality.
		if top := analysis.MeanTopDeviceShare(st, 3); top < 0.4 {
			t.Errorf("seed %d: top-device share %.2f", seed, top)
		}
		curves := analysis.DomainShares(st, 5)
		if curves.VolumeShare[0] < 0.15 {
			t.Errorf("seed %d: top-domain volume share %.2f", seed, curves.VolumeShare[0])
		}
		if curves.ConnShareByVolRank[0] >= curves.VolumeShare[0] {
			t.Errorf("seed %d: disproportionality inverted", seed)
		}
		wl := analysis.WhitelistedVolumeShare(st)
		if wl < 0.5 || wl > 0.85 {
			t.Errorf("seed %d: whitelisted share %.2f", seed, wl)
		}
	}
}
