// Package figures regenerates every table and figure of the paper's
// evaluation from a dataset.Store. Each function returns a Report whose
// lines are the same rows/series the paper plots, alongside the paper's
// own headline numbers so reproduction quality is visible at a glance.
//
// The benches in the repository root print one Report per paper exhibit;
// EXPERIMENTS.md records paper-vs-measured for each.
package figures

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/stats"
)

// Report is one regenerated exhibit.
type Report struct {
	ID         string // e.g. "Figure 3"
	Title      string
	PaperClaim string // the paper's reported result, for comparison
	Lines      []string
}

func (r *Report) add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", r.PaperClaim)
	}
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "   %s\n", l)
	}
	return b.String()
}

// Windows bundles the analysis windows (defaults = Table 2).
type Windows struct {
	Availability analysis.AvailabilityWindow
}

// DefaultWindows returns the paper's windows.
func DefaultWindows() Windows {
	return Windows{
		Availability: analysis.AvailabilityWindow{
			From: dataset.HeartbeatsFrom,
			To:   dataset.HeartbeatsTo,
		},
	}
}

// cdfLine formats an empirical CDF as quantile points.
func cdfLine(xs []float64, unit string) string {
	if len(xs) == 0 {
		return "(no samples)"
	}
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90}
	parts := make([]string, 0, len(qs))
	for _, q := range qs {
		parts = append(parts, fmt.Sprintf("p%02.0f=%.3g%s", q*100, stats.Quantile(xs, q), unit))
	}
	return strings.Join(parts, "  ")
}

// Table1 reproduces the deployment roster.
func Table1(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Table 1",
		Title:      "Classification of countries based on GDP per capita",
		PaperClaim: "90 developed routers across 10 countries; 36 developing across 9",
	}
	perCountry := map[string]int{}
	for _, code := range st.RouterCountry {
		perCountry[code]++
	}
	for _, grp := range []analysis.Group{analysis.Developed, analysis.Developing} {
		total := 0
		var parts []string
		for _, c := range geo.All() {
			if c.Developed != (grp == analysis.Developed) {
				continue
			}
			n := perCountry[c.Code]
			total += n
			parts = append(parts, fmt.Sprintf("%s=%d", c.Code, n))
		}
		r.add("%-10s total=%d  (%s)", grp, total, strings.Join(parts, " "))
	}
	return r
}

// Table2 reproduces the data set inventory.
func Table2(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Table 2",
		Title:      "Summary of data collected",
		PaperClaim: "Heartbeats 126 routers Oct'12–Apr'13; Uptime/Devices 113; WiFi 93; Traffic 25; Capacity 126",
	}
	distinct := func(ids map[string]bool) int { return len(ids) }
	hb := map[string]bool{}
	for _, id := range st.Heartbeats.Routers() {
		hb[id] = true
	}
	up, cp, dv, wf, tr := map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, x := range st.Uptime {
		up[x.RouterID] = true
	}
	for _, x := range st.Capacity {
		cp[x.RouterID] = true
	}
	for _, x := range st.Counts {
		dv[x.RouterID] = true
	}
	for _, x := range st.WiFi {
		wf[x.RouterID] = true
	}
	for _, x := range st.Flows {
		tr[x.RouterID] = true
	}
	countries := func(ids map[string]bool) int {
		cs := map[string]bool{}
		for id := range ids {
			cs[st.RouterCountry[id]] = true
		}
		return len(cs)
	}
	row := func(name string, ids map[string]bool, from, to time.Time) {
		r.add("%-11s routers=%-4d countries=%-3d %s – %s",
			name, distinct(ids), countries(ids),
			from.Format("2006-01-02"), to.Format("2006-01-02"))
	}
	row("Heartbeats", hb, dataset.HeartbeatsFrom, dataset.HeartbeatsTo)
	row("Capacity", cp, dataset.CapacityFrom, dataset.CapacityTo)
	row("Uptime", up, dataset.UptimeFrom, dataset.UptimeTo)
	row("Devices", dv, dataset.DevicesFrom, dataset.DevicesTo)
	row("WiFi", wf, dataset.WiFiFrom, dataset.WiFiTo)
	row("Traffic", tr, dataset.TrafficFrom, dataset.TrafficTo)
	return r
}

// Fig3 reproduces the downtime-frequency CDF.
func Fig3(st *dataset.Store, w Windows) *Report {
	r := &Report{
		ID:         "Figure 3",
		Title:      "Average number of downtimes per day (≥10 min), by group",
		PaperClaim: "developed median gap > a month (≲0.03/day); developing median < a day (≳0.4/day)",
	}
	rates := analysis.DowntimesPerDayByGroup(st, w.Availability)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		xs := rates[g]
		r.add("%-10s n=%-3d CDF: %s", g, len(xs), cdfLine(xs, "/day"))
	}
	gaps := analysis.MedianTimeBetweenDowntimes(st, w.Availability)
	r.add("median time between downtimes: developed=%s developing=%s",
		fmtDur(gaps[analysis.Developed]), fmtDur(gaps[analysis.Developing]))
	r.add("frequent-downtime share: developed >1/10days = %.0f%%, developing >1/3days = %.0f%%",
		100*analysis.FractionWithFrequentDowntime(st, analysis.Developed, w.Availability, 10),
		100*analysis.FractionWithFrequentDowntime(st, analysis.Developing, w.Availability, 3))
	return r
}

// Fig4 reproduces the downtime-duration CDF.
func Fig4(st *dataset.Store, w Windows) *Report {
	r := &Report{
		ID:         "Figure 4",
		Title:      "Downtime duration, by group",
		PaperClaim: "median ≈30 min for both; developing has the longer tail (up to days)",
	}
	durs := analysis.DowntimeDurationsByGroup(st, w.Availability)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		xs := durs[g]
		if len(xs) == 0 {
			r.add("%-10s (no downtimes)", g)
			continue
		}
		r.add("%-10s n=%-5d CDF(min): %s  max=%.1fh",
			g, len(xs), cdfLine(scale(xs, 1.0/60), "m"), stats.Quantile(xs, 1)/3600)
	}
	// Cause inference is only possible where the Uptime data set overlaps
	// (§3.3: the 12-hour uptime reports started in March).
	causeWin := w.Availability
	if causeWin.From.Before(dataset.UptimeFrom) {
		causeWin.From = dataset.UptimeFrom
	}
	if causeWin.To.After(dataset.UptimeTo) {
		causeWin.To = dataset.UptimeTo
	}
	if causeWin.To.After(causeWin.From) {
		for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
			t := analysis.DowntimeCauses(st, g, causeWin)
			r.add("%-10s causes (Uptime-overlap window): power-off=%d network=%d unknown=%d",
				g, t[analysis.CausePowerOff], t[analysis.CauseNetwork], t[analysis.CauseUnknown])
		}
	}
	return r
}

// Fig5 reproduces the GDP scatter.
func Fig5(st *dataset.Store, w Windows) *Report {
	r := &Report{
		ID:         "Figure 5",
		Title:      "Median number of downtimes vs per-capita GDP (≥3 routers)",
		PaperClaim: "IN and PK (lowest GDP) have by far the most downtimes; PK ≈2/day",
	}
	days := w.Availability.To.Sub(w.Availability.From).Hours() / 24
	for _, pt := range analysis.DowntimesByCountry(st, w.Availability, 3) {
		r.add("%-3s gdp=$%-6.0f routers=%-3d medianDowntimes=%-6.0f (%.2f/day) medianDur=%s",
			pt.Code, pt.GDPPPP, pt.Routers, pt.MedianDowntimes,
			pt.MedianDowntimes/days, fmtDur(pt.MedianDuration))
	}
	return r
}

// Fig6 reproduces the availability-mode case studies as day-strips.
func Fig6(st *dataset.Store, w Windows) *Report {
	r := &Report{
		ID:         "Figure 6",
		Title:      "Availability archetypes (10-day strips; '#'=online per hour, '.'=down)",
		PaperClaim: "(a) always-on; (b) appliance-mode evenings/weekends; (c) powered-on but flaky ISP",
	}
	// Pick one example per mode.
	found := map[analysis.AvailabilityMode]string{}
	for _, id := range st.Heartbeats.Routers() {
		m := analysis.ClassifyAvailability(st, id, w.Availability)
		if _, ok := found[m]; !ok {
			found[m] = id
		}
		if len(found) == 3 {
			break
		}
	}
	order := []analysis.AvailabilityMode{analysis.ModeAlwaysOn, analysis.ModeAppliance, analysis.ModeFlakyISP}
	for _, m := range order {
		id, ok := found[m]
		if !ok {
			r.add("(%s: no example in data)", m)
			continue
		}
		frac := st.Heartbeats.UptimeFraction(id, w.Availability.From, w.Availability.To, 0)
		r.add("%-10s %s  uptime=%.2f%%", m, id, frac*100)
		for _, line := range dayStrips(st, id, w.Availability.From, 10) {
			r.add("  %s", line)
		}
	}
	// §4.2 medians.
	for _, code := range []string{"US", "IN", "ZA"} {
		r.add("median uptime %s = %.2f%% (paper: US 98.25, IN 76.01, ZA 85.57)",
			code, 100*analysis.MedianUptimeFraction(st, code, w.Availability))
	}
	return r
}

// dayStrips renders per-hour availability for n days from start.
func dayStrips(st *dataset.Store, id string, start time.Time, n int) []string {
	var out []string
	for d := 0; d < n; d++ {
		day := start.Add(time.Duration(d) * 24 * time.Hour)
		downs := st.Heartbeats.Downtimes(id, day, day.Add(24*time.Hour), 0)
		var b strings.Builder
		fmt.Fprintf(&b, "%s ", day.Format("01-02"))
		for h := 0; h < 24; h++ {
			at := day.Add(time.Duration(h)*time.Hour + 30*time.Minute)
			covered := true
			for _, dn := range downs {
				if !at.Before(dn.Start) && at.Before(dn.End) {
					covered = false
					break
				}
			}
			if covered {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		out = append(out, b.String())
	}
	return out
}

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= 48*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= 2*time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	default:
		return fmt.Sprintf("%.0fm", d.Minutes())
	}
}

// sortedKeys returns map keys sorted (shared helper).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
