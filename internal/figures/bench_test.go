package figures

import (
	"testing"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/segment"
)

func storeRows(st *dataset.Store) int {
	return len(st.Uptime) + len(st.Capacity) + len(st.Counts) +
		len(st.Sightings) + len(st.WiFi) + len(st.Flows) + len(st.Throughput)
}

// BenchmarkAnalysisScan compares regenerating every exhibit from the
// in-memory store against doing the same from sealed segment files
// (open + merge + analyze) — the price of durability on the read path.
func BenchmarkAnalysisScan(b *testing.B) {
	st, win := study(b)
	rows := storeRows(st)

	b.Run("source=memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			All(st, win)
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})

	dir := b.TempDir()
	seg, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true, FlushRows: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	feedChunks(seg, chunkStores(st, 8), func() {
		if err := seg.Flush(); err != nil {
			b.Fatal(err)
		}
	})
	if err := seg.Close(); err != nil {
		b.Fatal(err)
	}
	b.Run("source=segments", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			re, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
			if err != nil {
				b.Fatal(err)
			}
			All(re.Merge(), win)
			if err := re.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkFigureRefresh prices one dashboard update when a new segment
// seals. Both paths start from the same sealed-chunk stream: full
// recomputation rebuilds the store from every chunk and renders;
// the incremental path clones the partial state, folds only the new
// chunk, materializes, and renders.
func BenchmarkFigureRefresh(b *testing.B) {
	st, win := study(b)
	chunks := chunkStores(st, 8)

	rebuild := func() *dataset.Store {
		dst := &dataset.Store{RouterCountry: map[string]string{}, Heartbeats: st.Heartbeats}
		for _, c := range chunks {
			for id, code := range c.RouterCountry {
				dst.RouterCountry[id] = code
			}
			dst.Uptime = append(dst.Uptime, c.Uptime...)
			dst.Capacity = append(dst.Capacity, c.Capacity...)
			dst.Counts = append(dst.Counts, c.Counts...)
			dst.Sightings = append(dst.Sightings, c.Sightings...)
			dst.WiFi = append(dst.WiFi, c.WiFi...)
			dst.Flows = append(dst.Flows, c.Flows...)
			dst.Throughput = append(dst.Throughput, c.Throughput...)
		}
		return dst
	}
	b.Run("mode=full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			All(rebuild(), win)
		}
	})

	base := analysis.NewPartial()
	for _, c := range chunks[:len(chunks)-1] {
		base.Fold(c)
	}
	tail := chunks[len(chunks)-1]
	b.Run("mode=incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := base.Clone()
			cl.Fold(tail)
			All(cl.Store(st.Heartbeats), win)
		}
	})
}
