package figures

import (
	"fmt"
	"strings"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/ouidb"
	"natpeek/internal/stats"
)

// Fig14 reproduces one home's diurnal utilization time series.
func Fig14(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 14",
		Title:      "Diurnal link utilization for one home (per-minute peak vs capacity)",
		PaperClaim: "capacity flat; utilization tracks daily cycles well below capacity",
	}
	id := busiestTrafficHome(st)
	if id == "" {
		r.add("(no traffic data)")
		return r
	}
	up, down := analysis.HomeCapacity(st, id)
	r.add("home=%s capacity: up=%.1f Mbps down=%.1f Mbps", id, up/1e6, down/1e6)
	// Bin by the home's local hour so the diurnal shape reads correctly.
	var offset time.Duration
	if c, ok := geo.Lookup(st.RouterCountry[id]); ok {
		offset = c.UTCOffset
	}
	for _, dir := range []string{"up", "down"} {
		series := analysis.UtilizationSeries(st, id, dir)
		if len(series) == 0 {
			continue
		}
		// Daily profile: mean peak by local hour of day.
		var bins stats.HourBins
		for _, p := range series {
			bins.Add(p.Minute.Add(offset).Hour(), p.PeakBps)
		}
		r.add("%-4s minutes=%-5d hourly mean peak (Mbps): %s",
			dir, len(series), hourSeriesMbps(bins))
	}
	return r
}

func hourSeriesMbps(h stats.HourBins) string {
	means := h.Means()
	parts := make([]string, 0, 8)
	for _, hr := range []int{0, 3, 6, 9, 12, 15, 18, 21} {
		parts = append(parts, fmt.Sprintf("%02d=%.2f", hr, means[hr]/1e6))
	}
	return strings.Join(parts, " ")
}

func busiestTrafficHome(st *dataset.Store) string {
	vol := map[string]int64{}
	for _, f := range st.Flows {
		vol[f.RouterID] += f.Bytes()
	}
	best, bestV := "", int64(-1)
	for _, id := range sortedKeys(vol) {
		if vol[id] > bestV {
			best, bestV = id, vol[id]
		}
	}
	return best
}

// Fig15 reproduces the saturation scatter.
func Fig15(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 15",
		Title:      "95th-percentile link utilization vs measured capacity",
		PaperClaim: "most homes <50% utilization; only two saturate; some uplinks exceed 1.0 (bufferbloat)",
	}
	sats := analysis.Saturation(st)
	if len(sats) == 0 {
		r.add("(no traffic data)")
		return r
	}
	var upUtil, downUtil []float64
	over := 0
	for _, s := range sats {
		if s.Dir == "up" {
			upUtil = append(upUtil, s.Utilization)
			if s.Utilization > 1 {
				over++
			}
		} else {
			downUtil = append(downUtil, s.Utilization)
		}
	}
	if len(downUtil) > 0 {
		r.add("downlink n=%-3d util CDF: %s", len(downUtil), cdfLine(downUtil, ""))
	}
	if len(upUtil) > 0 {
		r.add("uplink   n=%-3d util CDF: %s  homes>1.0=%d", len(upUtil), cdfLine(upUtil, ""), over)
	}
	under50 := 0
	for _, u := range downUtil {
		if u < 0.5 {
			under50++
		}
	}
	if len(downUtil) > 0 {
		r.add("downlink homes under 50%% utilization at p95: %.0f%%", 100*float64(under50)/float64(len(downUtil)))
	}
	return r
}

// Fig16 reproduces the bufferbloat case studies.
func Fig16(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 16",
		Title:      "Homes whose uplink utilization exceeds measured capacity",
		PaperClaim: "a continuous uploader saturates the uplink; bufferbloat makes measured throughput exceed capacity",
	}
	found := 0
	for _, s := range analysis.Saturation(st) {
		if s.Dir != "up" || s.Utilization <= 1 {
			continue
		}
		found++
		series := analysis.UtilizationSeries(st, s.RouterID, "up")
		overMin := 0
		for _, p := range series {
			if p.PeakBps > s.CapacityBps {
				overMin++
			}
		}
		r.add("home=%s upCapacity=%.2f Mbps p95=%.2f Mbps util=%.2f  minutes>capacity=%d/%d",
			s.RouterID, s.CapacityBps/1e6, s.P95Bps/1e6, s.Utilization, overMin, len(series))
	}
	if found == 0 {
		r.add("(no oversaturating homes in this run)")
	}
	return r
}

// Fig17 reproduces the per-device traffic share breakdown.
func Fig17(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 17",
		Title:      "Breakdown of traffic volume by device rank within each home",
		PaperClaim: "dominant device ≈60–65% on average; second ≈20%",
	}
	shares := analysis.DeviceShares(st)
	maxRank := 5
	sums := make([]float64, maxRank)
	counts := make([]int, maxRank)
	for _, id := range sortedKeys(shares) {
		for i, s := range shares[id] {
			if i >= maxRank {
				break
			}
			sums[i] += s
			counts[i]++
		}
	}
	if counts[0] == 0 {
		r.add("(no traffic data)")
		return r
	}
	for i := 0; i < maxRank && counts[i] > 0; i++ {
		r.add("device rank %d: mean share=%.0f%% (over %d homes)",
			i+1, 100*sums[i]/float64(counts[i]), counts[i])
	}
	r.add("mean top-device share (homes with ≥3 devices) = %.0f%%",
		100*analysis.MeanTopDeviceShare(st, 3))
	// Concentration beyond the top shares: Gini over per-device volumes,
	// averaged across homes (0 = even use, →1 = one device does it all).
	var ginis []float64
	for _, sh := range shares {
		if len(sh) >= 2 {
			ginis = append(ginis, stats.Gini(sh))
		}
	}
	if len(ginis) > 0 {
		r.add("mean per-home usage Gini = %.2f", stats.Mean(ginis))
	}
	return r
}

// Fig18 reproduces the top-5/top-10 domain popularity histogram.
func Fig18(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 18",
		Title:      "Homes in which a domain ranks top-5 / top-10 by volume",
		PaperClaim: "Google, YouTube, Facebook, Amazon, Apple, Twitter consistently popular; long tail",
	}
	pop := analysis.PopularDomains(st)
	limit := 15
	for i, p := range pop {
		if i >= limit {
			r.add("… %d more domains in the tail", len(pop)-limit)
			break
		}
		r.add("%-28s top5=%-3d top10=%-3d", p.Domain, p.Top5, p.Top10)
	}
	if len(pop) == 0 {
		r.add("(no traffic data)")
	}
	return r
}

// Fig19 reproduces the domain share curves.
func Fig19(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 19",
		Title:      "Domain share of volume and connections, by rank",
		PaperClaim: "top domain ≈38% of volume but <14% of connections; #2 ≈11%/7%; top-by-connections ≈19%",
	}
	curves := analysis.DomainShares(st, 10)
	if len(curves.VolumeShare) == 0 || curves.VolumeShare[0] == 0 {
		r.add("(no traffic data)")
		return r
	}
	r.add("(a) volume share by volume rank:      %s", pctSeries(curves.VolumeShare[:5]))
	r.add("(b) conn share by connection rank:    %s", pctSeries(curves.ConnShareByConnRank[:5]))
	r.add("(c) conn share of top-by-volume rank: %s", pctSeries(curves.ConnShareByVolRank[:5]))
	r.add("whitelisted share of volume = %.0f%% (paper ≈65%%)",
		100*analysis.WhitelistedVolumeShare(st))
	return r
}

func pctSeries(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("#%d=%.0f%%", i+1, 100*x)
	}
	return strings.Join(parts, " ")
}

// Fig20 reproduces the device-fingerprinting domain mixes: the two
// highest-volume devices with clearly different profiles.
func Fig20(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Figure 20",
		Title:      "Per-device domain mix (device fingerprinting)",
		PaperClaim: "a desktop splits across many domains (Dropbox-heavy); a Roku is almost all streaming",
	}
	devs := analysis.TopDevicesByVolume(st)
	shown := 0
	for _, d := range devs {
		if shown == 4 {
			break
		}
		mix := analysis.DeviceDomains(st, d)
		if len(mix) == 0 {
			continue
		}
		e := ouidb.Lookup(d)
		label := string(e.Category)
		if e.Manufacturer != "" {
			label = e.Manufacturer
		}
		var parts []string
		for i, m := range mix {
			if i == 4 {
				break
			}
			parts = append(parts, fmt.Sprintf("%s=%.0f%%", m.Domain, 100*m.Share))
		}
		r.add("%-16s %s  %s", label, d, strings.Join(parts, " "))
		shown++
	}
	if shown == 0 {
		r.add("(no traffic data)")
	}
	return r
}

// All regenerates every exhibit in paper order.
func All(st *dataset.Store, w Windows) []*Report {
	return []*Report{
		Table1(st), Table2(st),
		Fig3(st, w), Fig4(st, w), Fig5(st, w), Fig6(st, w),
		Fig7(st), Fig8(st), Fig9(st), Table5(st), Fig10(st), Fig11(st), Fig12(st),
		Fig13(st), Fig14(st), Fig15(st), Fig16(st), Fig17(st), Fig18(st), Fig19(st), Fig20(st),
	}
}

// ExtUsageByCountry is the §7 extension exhibit: the usage-structure
// comparison across country groups the paper left as future work
// ("Expanding the study of usage to more countries"). It is meaningful
// when the world ran with GlobalTraffic consent.
func ExtUsageByCountry(st *dataset.Store) *Report {
	r := &Report{
		ID:         "Extension §7",
		Title:      "Usage structure by country group (future work implemented)",
		PaperClaim: "paper's Traffic data covered only US homes; §7 asks how usage differs by country",
	}
	byGroup := analysis.UsageByGroup(st)
	for _, g := range []analysis.Group{analysis.Developed, analysis.Developing} {
		u := byGroup[g]
		if u.Homes == 0 {
			r.add("%-10s (no consenting traffic homes — run the world with GlobalTraffic)", g)
			continue
		}
		r.add("%-10s homes=%-3d volume=%.1f GB  whitelisted=%.0f%%  streaming=%.0f%%  topDomain(mean)=%.0f%%",
			g, u.Homes, float64(u.TotalBytes)/1e9,
			100*u.WhitelistedShare, 100*u.StreamingShare, 100*u.TopDomainShare)
	}
	return r
}
