package fingerprint

import (
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/domains"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/trafficgen"
)

func TestNormalize(t *testing.T) {
	s := Signature{domains.Streaming: 3, domains.Social: 1}.Normalize()
	if s[domains.Streaming] != 0.75 || s[domains.Social] != 0.25 {
		t.Fatalf("normalized %v", s)
	}
	empty := Signature{}.Normalize()
	if len(empty) != 0 {
		t.Fatal("empty changed")
	}
}

func TestCosine(t *testing.T) {
	a := Signature{domains.Streaming: 1}
	b := Signature{domains.Streaming: 1}
	c := Signature{domains.Cloud: 1}
	if Cosine(a, b) < 0.999 {
		t.Fatal("identical signatures not similar")
	}
	if Cosine(a, c) != 0 {
		t.Fatal("orthogonal signatures similar")
	}
	if Cosine(a, Signature{}) != 0 {
		t.Fatal("empty similarity not zero")
	}
}

func TestFromFlows(t *testing.T) {
	dev := mac.FromOUI(0xB0A737, 1)
	other := mac.FromOUI(0x001CB3, 2)
	flows := []dataset.FlowRecord{
		{Device: dev, Domain: "netflix.com", DownBytes: 900},
		{Device: dev, Domain: "hulu.com", DownBytes: 60},
		{Device: dev, Domain: "anon-aabbccddeeff", DownBytes: 40},
		{Device: other, Domain: "dropbox.com", DownBytes: 1000},
	}
	sig := FromFlows(flows, dev)
	if sig[domains.Streaming] != 0.96 {
		t.Fatalf("streaming share %v", sig[domains.Streaming])
	}
	if sig[domains.Other] != 0.04 {
		t.Fatalf("anon share %v", sig[domains.Other])
	}
	if sig[domains.Cloud] != 0 {
		t.Fatal("other device's flows leaked in")
	}
}

func TestClassifierRoundTrip(t *testing.T) {
	c := NewClassifier()
	c.Train("mediabox", Signature{domains.Streaming: 0.95, domains.Ads: 0.05})
	c.Train("mediabox", Signature{domains.Streaming: 0.9, domains.CDN: 0.1})
	c.Train("desktop", Signature{domains.Cloud: 0.5, domains.Search: 0.3, domains.News: 0.2})
	label, sim := c.Classify(Signature{domains.Streaming: 0.85, domains.CDN: 0.15})
	if label != "mediabox" || sim < 0.8 {
		t.Fatalf("classified as %q (%.2f)", label, sim)
	}
	label, _ = c.Classify(Signature{domains.Cloud: 0.6, domains.Search: 0.4})
	if label != "desktop" {
		t.Fatalf("classified as %q", label)
	}
}

func TestClassifyEmpty(t *testing.T) {
	c := NewClassifier()
	if l, s := c.Classify(Signature{domains.Ads: 1}); l != "" || s != 0 {
		t.Fatal("untrained classifier classified")
	}
	c.Train("x", Signature{})
	if len(c.Labels()) != 0 {
		t.Fatal("empty signature trained")
	}
}

func TestCentroidAveraging(t *testing.T) {
	c := NewClassifier()
	c.Train("k", Signature{domains.Streaming: 1})
	c.Train("k", Signature{domains.Cloud: 1})
	cent := c.Centroid("k")
	if cent[domains.Streaming] != 0.5 || cent[domains.Cloud] != 0.5 {
		t.Fatalf("centroid %v", cent)
	}
	if c.Centroid("missing") != nil {
		t.Fatal("missing centroid not nil")
	}
}

// TestEndToEndAccuracy trains on synthetic homes and verifies the
// classifier separates the behaviourally distinct kinds (the Fig. 20
// claim) well above chance.
func TestEndToEndAccuracy(t *testing.T) {
	us, _ := geo.Lookup("US")
	root := rng.New(21)
	day0 := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

	distinct := map[household.DeviceKind]bool{
		household.KindMediaBox: true,
		household.KindConsole:  true,
		household.KindNAS:      true,
		household.KindLaptop:   true,
	}

	var train, test []Labeled
	for h := 0; h < 40; h++ {
		home := household.Generate(us, h, root)
		gen := trafficgen.New(home)
		byDev := map[mac.Addr]Signature{}
		kind := map[mac.Addr]household.DeviceKind{}
		for d := 0; d < 5; d++ {
			day := day0.Add(time.Duration(d) * 24 * time.Hour)
			dt := gen.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
			for _, f := range dt.Flows {
				sig := byDev[f.Device.HW]
				if sig == nil {
					sig = Signature{}
					byDev[f.Device.HW] = sig
					kind[f.Device.HW] = f.Device.Kind
				}
				sig[f.Category] += float64(f.UpBytes + f.DownBytes)
			}
		}
		for hw, sig := range byDev {
			k := kind[hw]
			if !distinct[k] {
				continue
			}
			l := Labeled{Label: string(k), Sig: sig.Normalize()}
			if h < 20 {
				train = append(train, l)
			} else {
				test = append(test, l)
			}
		}
	}
	if len(train) < 10 || len(test) < 10 {
		t.Skipf("too few samples: train=%d test=%d", len(train), len(test))
	}
	c := NewClassifier()
	for _, l := range train {
		c.Train(l.Label, l.Sig)
	}
	_, acc := c.Confusion(test)
	// Four classes → chance is 25%. The distinct kinds should classify
	// far above that.
	if acc < 0.55 {
		t.Fatalf("accuracy %.2f, want well above chance", acc)
	}
}

func TestAnomalyScore(t *testing.T) {
	c := NewClassifier()
	c.Train("iot", Signature{domains.Tech: 0.6, domains.Other: 0.4})
	// Normal IoT chatter: low score.
	normal := Signature{domains.Tech: 0.5, domains.Other: 0.5}
	if s := c.AnomalyScore("iot", normal); s > 0.2 {
		t.Fatalf("normal mix scored %v", s)
	}
	// The same device suddenly bulk-uploading to cloud storage: high.
	infected := Signature{domains.Cloud: 0.95, domains.Other: 0.05}
	if s := c.AnomalyScore("iot", infected); s < 0.5 {
		t.Fatalf("infected mix scored %v", s)
	}
	// Unknown label is maximally suspicious.
	if s := c.AnomalyScore("toaster", normal); s != 1 {
		t.Fatalf("unknown label scored %v", s)
	}
}

func TestFlagSuspicious(t *testing.T) {
	c := NewClassifier()
	c.Train("printer", Signature{domains.Tech: 1})
	c.Train("mediabox", Signature{domains.Streaming: 1})
	obs := []DeviceObservation{
		{Device: mac.FromOUI(0x00264A, 1), Label: "printer",
			Sig: Signature{domains.Tech: 0.95, domains.Other: 0.05}},
		{Device: mac.FromOUI(0x00264A, 2), Label: "printer",
			Sig: Signature{domains.Social: 0.7, domains.Cloud: 0.3}}, // compromised
		{Device: mac.FromOUI(0xB0A737, 3), Label: "mediabox",
			Sig: Signature{domains.Streaming: 0.9, domains.Ads: 0.1}},
	}
	flagged := c.FlagSuspicious(obs, 0.5)
	if len(flagged) != 1 {
		t.Fatalf("flagged %d devices: %v", len(flagged), flagged)
	}
	if flagged[0].Device != mac.FromOUI(0x00264A, 2) {
		t.Fatalf("wrong device flagged: %v", flagged[0])
	}
}

func TestFlagSuspiciousOrdering(t *testing.T) {
	c := NewClassifier()
	c.Train("x", Signature{domains.Tech: 1})
	obs := []DeviceObservation{
		{Device: mac.FromOUI(1, 1), Label: "x", Sig: Signature{domains.Cloud: 1}},
		{Device: mac.FromOUI(1, 2), Label: "x", Sig: Signature{domains.Tech: 0.5, domains.Cloud: 0.5}},
	}
	flagged := c.FlagSuspicious(obs, 0.1)
	if len(flagged) != 2 || flagged[0].Score < flagged[1].Score {
		t.Fatalf("ordering wrong: %v", flagged)
	}
}
