// Package fingerprint implements the §7 extension the paper sketches:
// identifying the *type* of a device from its traffic rather than only
// its manufacturer — "usage patterns may differ significantly enough
// across types of devices to serve as fingerprints for device
// identification" (§6.4, Fig. 20).
//
// A device's signature is its traffic-volume distribution over domain
// categories (streaming, cloud, social, …). Classification is
// nearest-centroid by cosine similarity over signatures learned from
// labeled examples — the automated version of the paper's six-home
// ground-truth survey.
package fingerprint

import (
	"math"
	"sort"

	"natpeek/internal/dataset"
	"natpeek/internal/domains"
	"natpeek/internal/mac"
)

// Signature is a device's traffic share per domain category. Signatures
// are normalized: shares sum to 1 (or the signature is empty).
type Signature map[domains.Category]float64

// Normalize scales the signature to sum to 1 in place and returns it.
func (s Signature) Normalize() Signature {
	total := 0.0
	for _, v := range s {
		total += v
	}
	if total <= 0 {
		return s
	}
	for k := range s {
		s[k] /= total
	}
	return s
}

// Cosine returns the cosine similarity of two signatures in [0, 1].
func Cosine(a, b Signature) float64 {
	var dot, na, nb float64
	for k, av := range a {
		dot += av * b[k]
		na += av * av
	}
	for _, bv := range b {
		nb += bv * bv
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// FromFlows builds a device's signature from its Traffic flow records.
// Anonymized and empty domains fall into the Other category — exactly
// the information an anonymized data set still carries.
func FromFlows(flows []dataset.FlowRecord, dev mac.Addr) Signature {
	sig := Signature{}
	for _, f := range flows {
		if f.Device != dev {
			continue
		}
		sig[domains.CategoryOf(f.Domain)] += float64(f.Bytes())
	}
	return sig.Normalize()
}

// Classifier is a nearest-centroid device-type classifier.
type Classifier struct {
	sums   map[string]Signature
	counts map[string]int
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{sums: map[string]Signature{}, counts: map[string]int{}}
}

// Train adds one labeled example.
func (c *Classifier) Train(label string, sig Signature) {
	if len(sig) == 0 {
		return
	}
	sum := c.sums[label]
	if sum == nil {
		sum = Signature{}
		c.sums[label] = sum
	}
	for k, v := range sig {
		sum[k] += v
	}
	c.counts[label]++
}

// Labels returns the trained labels, sorted.
func (c *Classifier) Labels() []string {
	out := make([]string, 0, len(c.sums))
	for l := range c.sums {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Centroid returns the mean signature for a label (nil if untrained).
func (c *Classifier) Centroid(label string) Signature {
	sum, ok := c.sums[label]
	if !ok {
		return nil
	}
	out := Signature{}
	n := float64(c.counts[label])
	for k, v := range sum {
		out[k] = v / n
	}
	return out.Normalize()
}

// Classify returns the best label for sig and the cosine similarity to
// its centroid. An empty signature or untrained classifier yields
// ("", 0).
func (c *Classifier) Classify(sig Signature) (string, float64) {
	best, bestSim := "", -1.0
	for _, label := range c.Labels() {
		sim := Cosine(sig, c.Centroid(label))
		if sim > bestSim {
			best, bestSim = label, sim
		}
	}
	if bestSim < 0 {
		return "", 0
	}
	return best, bestSim
}

// Confusion evaluates the classifier on labeled test examples and
// returns a confusion matrix truth→predicted→count plus accuracy.
func (c *Classifier) Confusion(tests []Labeled) (map[string]map[string]int, float64) {
	matrix := map[string]map[string]int{}
	correct, total := 0, 0
	for _, t := range tests {
		if len(t.Sig) == 0 {
			continue
		}
		pred, _ := c.Classify(t.Sig)
		row := matrix[t.Label]
		if row == nil {
			row = map[string]int{}
			matrix[t.Label] = row
		}
		row[pred]++
		total++
		if pred == t.Label {
			correct++
		}
	}
	if total == 0 {
		return matrix, 0
	}
	return matrix, float64(correct) / float64(total)
}

// Labeled is a ground-truth example.
type Labeled struct {
	Label string
	Sig   Signature
}

// --- §7: "Device fingerprinting for security alerts" ---------------------
//
// ISPs can flag an infected home but "cannot map offending traffic to a
// particular MAC address". With per-device signatures the gateway can:
// a device whose current traffic mix stops resembling its own kind is
// suspicious — an IoT thermostat suddenly doing bulk upload, a printer
// talking to hundreds of domains.

// AnomalyScore measures how far sig deviates from the trained centroid
// for its expected label: 0 = identical mix, 1 = orthogonal. Unknown
// labels score 1 (nothing to compare against is itself suspicious).
func (c *Classifier) AnomalyScore(expectedLabel string, sig Signature) float64 {
	cent := c.Centroid(expectedLabel)
	if cent == nil || len(sig) == 0 {
		return 1
	}
	return 1 - Cosine(sig, cent)
}

// Suspicion is one flagged device.
type Suspicion struct {
	Device mac.Addr
	Label  string
	Score  float64
}

// FlagSuspicious scores every (device, expected-label, signature) triple
// and returns the ones above the threshold, most anomalous first.
func (c *Classifier) FlagSuspicious(devices []DeviceObservation, threshold float64) []Suspicion {
	var out []Suspicion
	for _, d := range devices {
		score := c.AnomalyScore(d.Label, d.Sig)
		if score >= threshold {
			out = append(out, Suspicion{Device: d.Device, Label: d.Label, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Device.String() < out[j].Device.String()
	})
	return out
}

// DeviceObservation is one device's current signature with its expected
// type.
type DeviceObservation struct {
	Device mac.Addr
	Label  string
	Sig    Signature
}
