package analysis

import (
	"fmt"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
)

// The scale regression guard: every paper figure must stay roughly
// linear in store size. Each figure gets a generous wall-clock budget on
// a store two orders of magnitude past the deployment (10k routers vs
// the paper's 126); an accidental O(n²) pass over homes or devices blows
// straight through it, while a healthy linear pass finishes in a small
// fraction.

const (
	scaleRouters = 10_000
	// trafficHomes mirrors the deployment: only a subset of the fleet
	// contributes the Traffic data set (flows + throughput).
	trafficHomes = 500
	// figureBudget is deliberately loose — it must absorb -race and slow
	// CI, yet still sit orders of magnitude below any quadratic blow-up
	// (10k² home pairs or ~1M² row pairs cannot finish inside it).
	figureBudget = 10 * time.Second
)

var (
	sFrom = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	sTo   = sFrom.Add(7 * 24 * time.Hour)
	sWin  = AvailabilityWindow{From: sFrom, To: sTo}
)

// buildScaleStore synthesizes the 10k-router store directly (the upload
// path is exercised elsewhere; here only the analysis input shape
// matters). Row mix per router: a week of RLE heartbeats, 14 uptime
// reports, 14 capacity measures, one day of hourly censuses with
// per-device sightings, 12 WiFi scans — and for the Traffic subset,
// domain-tagged flows plus per-minute throughput samples.
func buildScaleStore() *dataset.Store {
	st := dataset.NewStore()
	countries := geo.All()
	root := rng.New(7)
	domains := []string{"google.com", "youtube.com", "facebook.com", "netflix.com",
		"akamai.net", "twitter.com", "wikipedia.org", "bbc.co.uk"}
	ouis := []uint32{0x001CB3 /* Apple */, 0x0023AE /* Dell */, 0x0019C5 /* Sony */, 0x001599 /* Samsung */}

	minutes := func(d time.Duration) int { return int(d / time.Minute) }
	for i := 0; i < scaleRouters; i++ {
		id := fmt.Sprintf("scale-%05d", i)
		c := countries[i%len(countries)]
		st.RouterCountry[id] = c.Code
		r := root.ChildN("router", i)

		// Availability: a third always-on, a third appliance-style
		// (08:00–20:00), a third with a mid-week outage.
		switch i % 3 {
		case 0:
			st.Heartbeats.RecordRun(id, heartbeat.Run{Start: sFrom, Interval: 5 * time.Minute, Count: minutes(sTo.Sub(sFrom)) / 5})
		case 1:
			for d := 0; d < 7; d++ {
				day := sFrom.Add(time.Duration(d) * 24 * time.Hour)
				st.Heartbeats.RecordRun(id, heartbeat.Run{Start: day.Add(8 * time.Hour), Interval: 5 * time.Minute, Count: minutes(12*time.Hour) / 5})
			}
		default:
			gap := sFrom.Add(time.Duration(48+r.Intn(48)) * time.Hour)
			st.Heartbeats.RecordRun(id, heartbeat.Run{Start: sFrom, Interval: 5 * time.Minute, Count: minutes(gap.Sub(sFrom)) / 5})
			st.Heartbeats.RecordRun(id, heartbeat.Run{Start: gap.Add(2 * time.Hour), Interval: 5 * time.Minute, Count: minutes(sTo.Sub(gap)-2*time.Hour) / 5})
		}

		for d := 0; d < 14; d++ {
			at := sFrom.Add(time.Duration(d) * 12 * time.Hour)
			st.Uptime = append(st.Uptime, dataset.UptimeReport{
				RouterID: id, ReportedAt: at, Uptime: time.Duration(d) * 12 * time.Hour,
			})
			st.Capacity = append(st.Capacity, dataset.CapacityMeasure{
				RouterID: id, MeasuredAt: at,
				UpBps:   r.Range(0.5e6, 5e6),
				DownBps: r.Range(2e6, 50e6),
			})
		}

		// One day of hourly censuses with a stable device population, so
		// AlwaysConnected sees real always-present devices.
		devs := make([]mac.Addr, 2+r.Intn(3))
		kinds := make([]dataset.ConnKind, len(devs))
		for d := range devs {
			devs[d] = mac.FromOUI(ouis[(i+d)%len(ouis)], uint32(i*8+d))
			kinds[d] = dataset.ConnKind(d % 3)
		}
		for h := 0; h < 24; h++ {
			at := sFrom.Add(time.Duration(h) * time.Hour)
			st.Counts = append(st.Counts, dataset.DeviceCount{
				RouterID: id, At: at, Wired: 1 + i%4, W24: len(devs) - 1, W5: i % 2,
			})
			for d, dev := range devs {
				// The first device shows up in every census; the rest
				// come and go.
				if d > 0 && r.Bool(0.3) {
					continue
				}
				st.Sightings = append(st.Sightings, dataset.DeviceSighting{
					RouterID: id, At: at, Device: dev, Kind: kinds[d],
				})
			}
		}

		for w := 0; w < 12; w++ {
			band, ch := "2.4GHz", 1+(i%11)
			if w%4 == 3 {
				band, ch = "5GHz", 36
			}
			aps := 1 + r.Intn(4)
			if c.Developed {
				aps = 10 + r.Intn(20)
			}
			st.WiFi = append(st.WiFi, dataset.WiFiScan{
				RouterID: id, At: sFrom.Add(time.Duration(w) * 10 * time.Minute),
				Band: band, Channel: ch, VisibleAPs: aps, Clients: len(devs),
			})
		}

		if i < trafficHomes {
			for f := 0; f < 50; f++ {
				dom := domains[r.Intn(len(domains))]
				if r.Bool(0.35) {
					dom = fmt.Sprintf("anon-%016x", r.Uint64())
				}
				first := sFrom.Add(time.Duration(r.Intn(minutes(sTo.Sub(sFrom)))) * time.Minute)
				st.Flows = append(st.Flows, dataset.FlowRecord{
					RouterID: id, Device: devs[f%len(devs)], Domain: dom,
					Proto: "tcp", First: first, Last: first.Add(time.Minute),
					UpBytes: int64(r.Intn(1 << 20)), DownBytes: int64(r.Intn(1 << 24)),
					UpPkts: 100, DownPkts: 400, Conns: int64(1 + r.Intn(20)),
				})
			}
			for m := 0; m < 120; m++ {
				dir := "down"
				if m%2 == 0 {
					dir = "up"
				}
				st.Throughput = append(st.Throughput, dataset.ThroughputSample{
					RouterID: id, Minute: sFrom.Add(time.Duration(m) * time.Minute),
					Dir: dir, PeakBps: r.Range(1e5, 2e7), TotalBytes: int64(r.Intn(1 << 22)),
				})
			}
		}
	}
	return st
}

// TestScaleFigureBudgets builds the 10k-router store once and runs every
// figure against the clock. Each subtest also sanity-checks the output
// shape, so a figure silently returning nothing can't pass by doing no
// work.
func TestScaleFigureBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-router synthetic store is too heavy for -short")
	}
	start := time.Now()
	st := buildScaleStore()
	t.Logf("built %d-router store in %v (%d sightings, %d flows)",
		scaleRouters, time.Since(start), len(st.Sightings), len(st.Flows))

	figure := func(name string, fn func() error) {
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			err := fn()
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if elapsed > figureBudget {
				t.Fatalf("%s took %v, budget %v — likely superlinear in store size", name, elapsed, figureBudget)
			}
			t.Logf("%s: %v", name, elapsed)
		})
	}

	figure("DowntimesPerDayByGroup", func() error {
		got := DowntimesPerDayByGroup(st, sWin)
		if len(got[Developed]) == 0 || len(got[Developing]) == 0 {
			return fmt.Errorf("missing group samples: %d/%d", len(got[Developed]), len(got[Developing]))
		}
		return nil
	})
	figure("DowntimeDurationsByGroup", func() error {
		got := DowntimeDurationsByGroup(st, sWin)
		if len(got[Developing]) == 0 {
			return fmt.Errorf("no developing downtimes")
		}
		return nil
	})
	figure("MedianTimeBetweenDowntimes", func() error {
		got := MedianTimeBetweenDowntimes(st, sWin)
		if got[Developed] == 0 {
			return fmt.Errorf("no developed median")
		}
		return nil
	})
	figure("DowntimesByCountry", func() error {
		pts := DowntimesByCountry(st, sWin, 3)
		if len(pts) < 10 {
			return fmt.Errorf("only %d country points", len(pts))
		}
		return nil
	})
	figure("FractionWithFrequentDowntime", func() error {
		FractionWithFrequentDowntime(st, Developing, sWin, 1)
		return nil
	})
	figure("DowntimeCauses", func() error {
		got := DowntimeCauses(st, Developing, sWin)
		if len(got) == 0 {
			return fmt.Errorf("no downtime causes")
		}
		return nil
	})
	figure("UniqueDevicesPerHome", func() error {
		got := UniqueDevicesPerHome(st)
		if len(got) != scaleRouters {
			return fmt.Errorf("devices for %d homes, want %d", len(got), scaleRouters)
		}
		return nil
	})
	figure("ConnectedByGroup", func() error {
		got := ConnectedByGroup(st)
		if got[Developed].Wired.N == 0 || got[Developing].Wired.N == 0 {
			return fmt.Errorf("empty group: %+v", got)
		}
		return nil
	})
	figure("AlwaysConnected", func() error {
		got := AlwaysConnected(st, 12*time.Hour)
		if got[Developed].WithWired+got[Developed].WithWireless == 0 {
			return fmt.Errorf("no always-connected devices found: %+v", got)
		}
		return nil
	})
	figure("VisibleAPsByGroup", func() error {
		got := VisibleAPsByGroup(st)
		if len(got[Developed]) == 0 || len(got[Developing]) == 0 {
			return fmt.Errorf("missing AP samples")
		}
		return nil
	})
	figure("AllFourPortsShare", func() error {
		if share := AllFourPortsShare(st, Developed); share == 0 {
			return fmt.Errorf("no four-port homes in a 10k fleet")
		}
		return nil
	})
	figure("ManufacturerHistogram", func() error {
		got := ManufacturerHistogram(st, 100_000)
		if len(got) == 0 {
			return fmt.Errorf("no manufacturer categories")
		}
		return nil
	})
	figure("DiurnalDevices", func() error {
		weekday, _ := DiurnalDevices(st)
		means := weekday.Means()
		total := 0.0
		for _, m := range means {
			total += m
		}
		if total == 0 {
			return fmt.Errorf("no weekday diurnal samples")
		}
		return nil
	})
	figure("Saturation", func() error {
		got := Saturation(st)
		if len(got) == 0 {
			return fmt.Errorf("no saturation points")
		}
		return nil
	})
	figure("DeviceShares", func() error {
		got := DeviceShares(st)
		if len(got) == 0 {
			return fmt.Errorf("no device shares")
		}
		return nil
	})
	figure("PopularDomains", func() error {
		got := PopularDomains(st)
		if len(got) == 0 {
			return fmt.Errorf("no popular domains")
		}
		return nil
	})
	figure("DomainShares", func() error {
		got := DomainShares(st, 10)
		if got.VolumeShare[0] == 0 {
			return fmt.Errorf("empty rank-1 volume share")
		}
		return nil
	})
	figure("WhitelistedVolumeShare", func() error {
		if share := WhitelistedVolumeShare(st); share <= 0 || share >= 1 {
			return fmt.Errorf("whitelisted share %v outside (0,1)", share)
		}
		return nil
	})
	figure("UsageByGroup", func() error {
		got := UsageByGroup(st)
		if len(got) == 0 {
			return fmt.Errorf("no usage groups")
		}
		return nil
	})
}
