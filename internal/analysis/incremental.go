// Incremental analysis state. A Partial is a mergeable projection of a
// row stream that is sufficient to regenerate every figure exactly:
// fold sealed segment chunks into it as they arrive and the dashboard
// never has to re-scan history.
//
// The projection keeps low-volume row kinds verbatim (uptime, capacity,
// censuses, sightings, WiFi scans, per-minute throughput — all bounded
// by fleet size × observation minutes) and collapses the one unbounded
// kind, flow records, into per-(router, device, domain, proto) running
// totals. Every figure that reads flows consumes only RouterID, Device,
// Domain, Bytes() and Conns, so the collapse is lossless for analysis;
// and because byte/connection counts are integers whose sums stay far
// below 2^53, the float64 arithmetic downstream is exact regardless of
// how many rows were merged into each total — the rendered figures are
// bit-identical to a batch run over the raw rows.
//
// Ordering: Fold must be called with chunks in stream order (sealed
// segments in sequence order, then the live tail). Kept rows are
// appended, so the projected store's row order equals the raw store's
// and every order-sensitive fold downstream (HourBins sums,
// last-sighting-wins kinds) reproduces the batch result.
package analysis

import (
	"sort"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
)

// FlowKey identifies one flow aggregate.
type FlowKey struct {
	Router string
	Device mac.Addr
	Domain string
	Proto  string
}

type flowTotals struct {
	first, last                          time.Time
	upBytes, downBytes, upPkts, downPkts int64
	conns                                int64
}

// Partial is the mergeable incremental state. The zero value is not
// usable; construct with NewPartial.
type Partial struct {
	roster     map[string]string
	uptime     []dataset.UptimeReport
	capacity   []dataset.CapacityMeasure
	counts     []dataset.DeviceCount
	sightings  []dataset.DeviceSighting
	wifi       []dataset.WiFiScan
	throughput []dataset.ThroughputSample

	flowOrder []FlowKey // first-seen order, for deterministic materialization
	flows     map[FlowKey]*flowTotals
	flowRows  int // raw flow rows folded (pre-collapse)
}

// NewPartial returns an empty accumulator.
func NewPartial() *Partial {
	return &Partial{
		roster: make(map[string]string),
		flows:  make(map[FlowKey]*flowTotals),
	}
}

// Fold accumulates one chunk of rows. The chunk is not retained and not
// mutated. Chunks must arrive in stream order (see package comment).
func (p *Partial) Fold(chunk *dataset.Store) {
	for id, c := range chunk.RouterCountry {
		p.roster[id] = c
	}
	p.uptime = append(p.uptime, chunk.Uptime...)
	p.capacity = append(p.capacity, chunk.Capacity...)
	p.counts = append(p.counts, chunk.Counts...)
	p.sightings = append(p.sightings, chunk.Sightings...)
	p.wifi = append(p.wifi, chunk.WiFi...)
	p.throughput = append(p.throughput, chunk.Throughput...)
	for _, f := range chunk.Flows {
		p.foldFlow(f)
	}
}

func (p *Partial) foldFlow(f dataset.FlowRecord) {
	p.flowRows++
	k := FlowKey{Router: f.RouterID, Device: f.Device, Domain: f.Domain, Proto: f.Proto}
	t := p.flows[k]
	if t == nil {
		t = &flowTotals{first: f.First, last: f.Last}
		p.flows[k] = t
		p.flowOrder = append(p.flowOrder, k)
	} else {
		if !f.First.IsZero() && (t.first.IsZero() || f.First.Before(t.first)) {
			t.first = f.First
		}
		if f.Last.After(t.last) {
			t.last = f.Last
		}
	}
	t.upBytes += f.UpBytes
	t.downBytes += f.DownBytes
	t.upPkts += f.UpPkts
	t.downPkts += f.DownPkts
	t.conns += f.Conns
}

// Merge folds o into p, as if o's chunks had been folded after p's. o
// is not retained; p and o must not share chunks.
func (p *Partial) Merge(o *Partial) {
	for id, c := range o.roster {
		p.roster[id] = c
	}
	p.uptime = append(p.uptime, o.uptime...)
	p.capacity = append(p.capacity, o.capacity...)
	p.counts = append(p.counts, o.counts...)
	p.sightings = append(p.sightings, o.sightings...)
	p.wifi = append(p.wifi, o.wifi...)
	p.throughput = append(p.throughput, o.throughput...)
	for _, k := range o.flowOrder {
		t := o.flows[k]
		dst := p.flows[k]
		if dst == nil {
			cp := *t
			p.flows[k] = &cp
			p.flowOrder = append(p.flowOrder, k)
			continue
		}
		if !t.first.IsZero() && (dst.first.IsZero() || t.first.Before(dst.first)) {
			dst.first = t.first
		}
		if t.last.After(dst.last) {
			dst.last = t.last
		}
		dst.upBytes += t.upBytes
		dst.downBytes += t.downBytes
		dst.upPkts += t.upPkts
		dst.downPkts += t.downPkts
		dst.conns += t.conns
	}
	p.flowRows += o.flowRows
}

// Clone returns an independent deep copy — a render can fold the live
// tail into the clone without disturbing the accumulating base. Slices
// are copied at exact capacity so the clone's first append reallocates
// rather than sharing backing arrays with the base.
func (p *Partial) Clone() *Partial {
	q := &Partial{
		roster:     make(map[string]string, len(p.roster)),
		uptime:     exactCopy(p.uptime),
		capacity:   exactCopy(p.capacity),
		counts:     exactCopy(p.counts),
		sightings:  exactCopy(p.sightings),
		wifi:       exactCopy(p.wifi),
		throughput: exactCopy(p.throughput),
		flowOrder:  exactCopy(p.flowOrder),
		flows:      make(map[FlowKey]*flowTotals, len(p.flows)),
		flowRows:   p.flowRows,
	}
	for id, c := range p.roster {
		q.roster[id] = c
	}
	for k, t := range p.flows {
		cp := *t
		q.flows[k] = &cp
	}
	return q
}

func exactCopy[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// RawFlowRows reports how many flow rows were folded (before the
// per-key collapse); Len reports the projected flow aggregate count.
// Their ratio is the projection's compression on the dominant kind.
func (p *Partial) RawFlowRows() int { return p.flowRows }

// FlowAggregates reports the projected flow row count.
func (p *Partial) FlowAggregates() int { return len(p.flows) }

// Store materializes the projection as a dataset.Store for the batch
// figure code. Kept kinds alias nothing (fresh slices on every call is
// avoided — the slices are shared read-only with the Partial, so the
// result must not be mutated and the Partial must not fold while the
// store is in use; Clone first for a stable snapshot). hb supplies the
// heartbeat log, which is already an incremental structure of its own
// (run-length encoded) and is shared rather than copied.
func (p *Partial) Store(hb *heartbeat.Log) *dataset.Store {
	st := &dataset.Store{
		Heartbeats:    hb,
		RouterCountry: p.roster,
		Uptime:        p.uptime,
		Capacity:      p.capacity,
		Counts:        p.counts,
		Sightings:     p.sightings,
		WiFi:          p.wifi,
		Throughput:    p.throughput,
	}
	st.Flows = make([]dataset.FlowRecord, 0, len(p.flowOrder))
	for _, k := range p.flowOrder {
		t := p.flows[k]
		st.Flows = append(st.Flows, dataset.FlowRecord{
			RouterID: k.Router, Device: k.Device, Domain: k.Domain, Proto: k.Proto,
			First: t.first, Last: t.last,
			UpBytes: t.upBytes, DownBytes: t.downBytes,
			UpPkts: t.upPkts, DownPkts: t.downPkts,
			Conns: t.conns,
		})
	}
	return st
}

// Rows summarizes the projected state (diagnostics for the dashboard
// header).
func (p *Partial) Rows() dataset.RowCounts {
	ids := make([]string, 0, len(p.roster))
	for id := range p.roster {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return dataset.RowCounts{
		Routers:    len(ids),
		Uptime:     len(p.uptime),
		Capacity:   len(p.capacity),
		Counts:     len(p.counts),
		Sightings:  len(p.sightings),
		WiFi:       len(p.wifi),
		Flows:      p.flowRows,
		Throughput: len(p.throughput),
	}
}
