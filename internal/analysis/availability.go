// Package analysis computes the paper's statistics from the collected
// data sets. It is organized by paper section: availability (§4),
// infrastructure (§5), and usage (§6). All functions are pure reads over
// a dataset.Store.
package analysis

import (
	"sort"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/stats"
)

// Group selects the developed/developing split of Table 1.
type Group int

// Country groups.
const (
	Developed Group = iota
	Developing
)

func (g Group) String() string {
	if g == Developed {
		return "developed"
	}
	return "developing"
}

// isDeveloped resolves a router's group through the roster.
func isDeveloped(st *dataset.Store, routerID string) (bool, bool) {
	code, ok := st.RouterCountry[routerID]
	if !ok {
		return false, false
	}
	c, ok := geo.Lookup(code)
	if !ok {
		return false, false
	}
	return c.Developed, true
}

// RoutersInGroup returns the router IDs belonging to a group.
func RoutersInGroup(st *dataset.Store, g Group) []string {
	var out []string
	for _, id := range st.Routers() {
		dev, ok := isDeveloped(st, id)
		if ok && (dev == (g == Developed)) {
			out = append(out, id)
		}
	}
	return out
}

// RoutersInCountry returns the router IDs deployed in the country code.
func RoutersInCountry(st *dataset.Store, code string) []string {
	var out []string
	for _, id := range st.Routers() {
		if st.RouterCountry[id] == code {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// AvailabilityWindow is the analysis window for heartbeat statistics.
type AvailabilityWindow struct {
	From, To  time.Time
	Threshold time.Duration // gap threshold; 0 = the paper's 10 minutes
}

// DowntimesPerDayByGroup computes, per group, each router's average number
// of downtimes per day — the distribution behind Fig. 3.
func DowntimesPerDayByGroup(st *dataset.Store, w AvailabilityWindow) map[Group][]float64 {
	out := map[Group][]float64{}
	for _, g := range []Group{Developed, Developing} {
		for _, id := range RoutersInGroup(st, g) {
			out[g] = append(out[g], st.Heartbeats.DowntimesPerDay(id, w.From, w.To, w.Threshold))
		}
	}
	return out
}

// DowntimeDurationsByGroup pools every downtime duration (seconds) per
// group — Fig. 4's distribution.
func DowntimeDurationsByGroup(st *dataset.Store, w AvailabilityWindow) map[Group][]float64 {
	out := map[Group][]float64{}
	for _, g := range []Group{Developed, Developing} {
		for _, id := range RoutersInGroup(st, g) {
			for _, d := range st.Heartbeats.Downtimes(id, w.From, w.To, w.Threshold) {
				out[g] = append(out[g], d.Duration().Seconds())
			}
		}
	}
	return out
}

// MedianTimeBetweenDowntimes returns the per-group median of each
// router's mean time between downtimes (the §4.1 "more than a month vs
// less than a day" comparison). Routers with no downtime contribute the
// window length.
func MedianTimeBetweenDowntimes(st *dataset.Store, w AvailabilityWindow) map[Group]time.Duration {
	out := map[Group]time.Duration{}
	span := w.To.Sub(w.From)
	for _, g := range []Group{Developed, Developing} {
		var gaps []float64
		for _, id := range RoutersInGroup(st, g) {
			n := len(st.Heartbeats.Downtimes(id, w.From, w.To, w.Threshold))
			if n == 0 {
				gaps = append(gaps, span.Seconds())
			} else {
				gaps = append(gaps, span.Seconds()/float64(n))
			}
		}
		if len(gaps) > 0 {
			out[g] = time.Duration(stats.Median(gaps) * float64(time.Second))
		}
	}
	return out
}

// CountryDowntime is one Fig. 5 scatter point.
type CountryDowntime struct {
	Code            string
	GDPPPP          float64
	Routers         int
	MedianDowntimes float64       // median per-home count over the window
	MedianDuration  time.Duration // median downtime duration (marker size)
}

// DowntimesByCountry computes Fig. 5: the median number of downtimes per
// home in each country with at least minRouters deployed, against GDP.
func DowntimesByCountry(st *dataset.Store, w AvailabilityWindow, minRouters int) []CountryDowntime {
	var out []CountryDowntime
	for _, c := range geo.All() {
		ids := RoutersInCountry(st, c.Code)
		if len(ids) < minRouters {
			continue
		}
		var counts, durs []float64
		for _, id := range ids {
			downs := st.Heartbeats.Downtimes(id, w.From, w.To, w.Threshold)
			counts = append(counts, float64(len(downs)))
			for _, d := range downs {
				durs = append(durs, d.Duration().Seconds())
			}
		}
		cd := CountryDowntime{
			Code:            c.Code,
			GDPPPP:          c.GDPPPP,
			Routers:         len(ids),
			MedianDowntimes: stats.Median(counts),
		}
		if len(durs) > 0 {
			cd.MedianDuration = time.Duration(stats.Median(durs) * float64(time.Second))
		}
		out = append(out, cd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GDPPPP < out[j].GDPPPP })
	return out
}

// MedianUptimeFraction returns the median per-router uptime fraction for
// a country (§4.2: US 98.25%, IN 76.01%, ZA 85.57%).
func MedianUptimeFraction(st *dataset.Store, code string, w AvailabilityWindow) float64 {
	var ups []float64
	for _, id := range RoutersInCountry(st, code) {
		ups = append(ups, st.Heartbeats.UptimeFraction(id, w.From, w.To, w.Threshold))
	}
	if len(ups) == 0 {
		return 0
	}
	return stats.Median(ups)
}

// AvailabilityMode classifies a router's availability pattern into the
// three Fig. 6 archetypes.
type AvailabilityMode string

// Fig. 6 archetypes.
const (
	ModeAlwaysOn  AvailabilityMode = "always-on" // Fig. 6a
	ModeAppliance AvailabilityMode = "appliance" // Fig. 6b
	ModeFlakyISP  AvailabilityMode = "flaky-isp" // Fig. 6c
)

// ClassifyAvailability labels a router by combining heartbeat uptime with
// the Uptime data set: high availability → always-on; low availability
// with uptime counters that reset at every report → appliance (the
// router is being power-cycled); low availability with long-running
// uptime counters → the ISP is flaky while the router stays powered.
func ClassifyAvailability(st *dataset.Store, id string, w AvailabilityWindow) AvailabilityMode {
	frac := st.Heartbeats.UptimeFraction(id, w.From, w.To, w.Threshold)
	if frac >= 0.93 {
		return ModeAlwaysOn
	}
	var reports []dataset.UptimeReport
	for _, r := range st.Uptime {
		if r.RouterID == id {
			reports = append(reports, r)
		}
	}
	if len(reports) == 0 {
		return ModeAppliance
	}
	long := 0
	for _, r := range reports {
		if r.Uptime >= 24*time.Hour {
			long++
		}
	}
	if float64(long)/float64(len(reports)) >= 0.5 {
		return ModeFlakyISP
	}
	return ModeAppliance
}

// Timeline returns a router's availability as on-intervals derived from
// its heartbeat runs, for rendering Fig. 6 style strips.
func Timeline(st *dataset.Store, id string, w AvailabilityWindow) []heartbeat.Downtime {
	return st.Heartbeats.Downtimes(id, w.From, w.To, w.Threshold)
}

// FractionWithFrequentDowntime returns the share of a group's routers
// whose downtime frequency exceeds once per every `days` days — the §1
// claim "only 10% of home networks in the developed world saw
// connectivity interruptions … more frequently than once every 10 days,
// but about 50% of home networks in developing countries experienced such
// connectivity interruptions once every 3 days".
func FractionWithFrequentDowntime(st *dataset.Store, g Group, w AvailabilityWindow, days float64) float64 {
	ids := RoutersInGroup(st, g)
	if len(ids) == 0 {
		return 0
	}
	n := 0
	for _, id := range ids {
		if st.Heartbeats.DowntimesPerDay(id, w.From, w.To, w.Threshold) > 1/days {
			n++
		}
	}
	return float64(n) / float64(len(ids))
}

// DowntimeCause labels why a heartbeat gap happened, inferred by
// cross-referencing the Uptime data set the way §3.3/§4 describe: "we
// can positively verify downtimes caused by powered off routers using
// the Uptime data set", while a router whose uptime counter spans the
// gap was powered the whole time — the outage was in the network.
type DowntimeCause string

// Downtime causes.
const (
	CausePowerOff DowntimeCause = "power-off" // counter reset after the gap
	CauseNetwork  DowntimeCause = "network"   // counter spans the gap
	CauseUnknown  DowntimeCause = "unknown"   // no usable report
)

// ClassifyDowntime infers the cause of one downtime for a router.
func ClassifyDowntime(st *dataset.Store, id string, d heartbeat.Downtime) DowntimeCause {
	var reports []dataset.UptimeReport
	for _, r := range st.Uptime {
		if r.RouterID == id {
			reports = append(reports, r)
		}
	}
	sortUptime(reports)
	return classifyFromReports(reports, d)
}

// sortUptime orders one router's reports by report time.
func sortUptime(reports []dataset.UptimeReport) {
	sort.Slice(reports, func(i, j int) bool {
		return reports[i].ReportedAt.Before(reports[j].ReportedAt)
	})
}

// classifyFromReports is ClassifyDowntime over a pre-sorted slice of one
// router's uptime reports, so callers tallying many downtimes can index
// once and binary-search per gap.
func classifyFromReports(reports []dataset.UptimeReport, d heartbeat.Downtime) DowntimeCause {
	// The first uptime report at or after the gap's end tells us when the
	// router last booted.
	i := sort.Search(len(reports), func(i int) bool {
		return !reports[i].ReportedAt.Before(d.End)
	})
	if i == len(reports) || reports[i].ReportedAt.Sub(d.End) > 24*time.Hour {
		return CauseUnknown
	}
	best := reports[i]
	bootedAt := best.ReportedAt.Add(-best.Uptime)
	// Booted before the gap began (with slack for report cadence): the
	// router was powered throughout — a network outage.
	if bootedAt.Before(d.Start.Add(-time.Minute)) {
		return CauseNetwork
	}
	return CausePowerOff
}

// DowntimeCauses tallies causes for every downtime of a group within the
// window where Uptime data exists.
func DowntimeCauses(st *dataset.Store, g Group, w AvailabilityWindow) map[DowntimeCause]int {
	byRouter := map[string][]dataset.UptimeReport{}
	for _, r := range st.Uptime {
		byRouter[r.RouterID] = append(byRouter[r.RouterID], r)
	}
	for _, reports := range byRouter {
		sortUptime(reports)
	}
	out := map[DowntimeCause]int{}
	for _, id := range RoutersInGroup(st, g) {
		for _, d := range st.Heartbeats.Downtimes(id, w.From, w.To, w.Threshold) {
			out[classifyFromReports(byRouter[id], d)]++
		}
	}
	return out
}
