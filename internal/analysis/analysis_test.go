package analysis

import (
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
)

var (
	aFrom = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	aTo   = time.Date(2012, 10, 11, 0, 0, 0, 0, time.UTC) // 10 days
	win   = AvailabilityWindow{From: aFrom, To: aTo}
)

// fixtureStore builds a small hand-crafted store with known properties:
//   - us-1 (developed): always on.
//   - us-2 (developed): one 1-hour outage.
//   - in-1 (developing): off 12 h/day (appliance-style).
//   - in-2 (developing): two 30-minute outages per day.
func fixtureStore() *dataset.Store {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.RouterCountry["us-2"] = "US"
	st.RouterCountry["in-1"] = "IN"
	st.RouterCountry["in-2"] = "IN"

	days := int(aTo.Sub(aFrom) / (24 * time.Hour))
	minutes := func(d time.Duration) int { return int(d / time.Minute) }

	// us-1: continuous beats.
	st.Heartbeats.RecordRun("us-1", heartbeat.Run{Start: aFrom, Interval: time.Minute, Count: minutes(aTo.Sub(aFrom))})

	// us-2: continuous except hour 100–101.
	gapStart := aFrom.Add(100 * time.Hour)
	st.Heartbeats.RecordRun("us-2", heartbeat.Run{Start: aFrom, Interval: time.Minute, Count: minutes(100 * time.Hour)})
	st.Heartbeats.RecordRun("us-2", heartbeat.Run{Start: gapStart.Add(time.Hour), Interval: time.Minute, Count: minutes(aTo.Sub(gapStart) - time.Hour)})

	// in-1: on 08:00–20:00 each day.
	for d := 0; d < days; d++ {
		day := aFrom.Add(time.Duration(d) * 24 * time.Hour)
		st.Heartbeats.RecordRun("in-1", heartbeat.Run{Start: day.Add(8 * time.Hour), Interval: time.Minute, Count: minutes(12 * time.Hour)})
	}
	// in-2: on all day except 30-minute gaps at 03:00 and 15:00.
	for d := 0; d < days; d++ {
		day := aFrom.Add(time.Duration(d) * 24 * time.Hour)
		st.Heartbeats.RecordRun("in-2", heartbeat.Run{Start: day, Interval: time.Minute, Count: minutes(3 * time.Hour)})
		st.Heartbeats.RecordRun("in-2", heartbeat.Run{Start: day.Add(3*time.Hour + 30*time.Minute), Interval: time.Minute, Count: minutes(11*time.Hour + 30*time.Minute)})
		st.Heartbeats.RecordRun("in-2", heartbeat.Run{Start: day.Add(15*time.Hour + 30*time.Minute), Interval: time.Minute, Count: minutes(8*time.Hour + 30*time.Minute)})
	}
	return st
}

func TestRouterGrouping(t *testing.T) {
	st := fixtureStore()
	dev := RoutersInGroup(st, Developed)
	dvg := RoutersInGroup(st, Developing)
	if len(dev) != 2 || len(dvg) != 2 {
		t.Fatalf("groups %v / %v", dev, dvg)
	}
	if got := RoutersInCountry(st, "IN"); len(got) != 2 {
		t.Fatalf("IN routers %v", got)
	}
}

func TestDowntimesPerDayByGroup(t *testing.T) {
	st := fixtureStore()
	got := DowntimesPerDayByGroup(st, win)
	dev, dvg := got[Developed], got[Developing]
	if len(dev) != 2 || len(dvg) != 2 {
		t.Fatal("missing samples")
	}
	// us-1: 0/day; us-2: 0.1/day; in-1: ~1/day (overnight gaps, trailing
	// counts once); in-2: 2/day.
	for _, v := range dev {
		if v > 0.2 {
			t.Fatalf("developed rate %v too high", v)
		}
	}
	for _, v := range dvg {
		if v < 0.8 {
			t.Fatalf("developing rate %v too low", v)
		}
	}
}

func TestDowntimeDurations(t *testing.T) {
	st := fixtureStore()
	got := DowntimeDurationsByGroup(st, win)
	if len(got[Developed]) != 1 {
		t.Fatalf("developed downtimes = %d, want 1", len(got[Developed]))
	}
	// Gap runs from the last beat before the outage (59 s into minute
	// 99:59) to the first beat after: 1 h plus one heartbeat interval.
	if got[Developed][0] != 3660 {
		t.Fatalf("us-2 downtime = %v s", got[Developed][0])
	}
	for _, d := range got[Developing] {
		if d < 1700 {
			t.Fatalf("developing downtime %v s too short", d)
		}
	}
}

func TestMedianTimeBetweenDowntimes(t *testing.T) {
	st := fixtureStore()
	got := MedianTimeBetweenDowntimes(st, win)
	if got[Developed] <= got[Developing] {
		t.Fatalf("ordering wrong: %v vs %v", got[Developed], got[Developing])
	}
	// us median: between no-downtime (window 240h) and 1 downtime
	// (100h)... median of {240h, 240h/1} = 240h? us-2 has 1 downtime →
	// 240h. Median = 240h.
	if got[Developed] < 200*time.Hour {
		t.Fatalf("developed median %v", got[Developed])
	}
}

func TestDowntimesByCountry(t *testing.T) {
	st := fixtureStore()
	pts := DowntimesByCountry(st, win, 2)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sorted by GDP: IN first.
	if pts[0].Code != "IN" || pts[1].Code != "US" {
		t.Fatalf("order %v", pts)
	}
	if pts[0].MedianDowntimes <= pts[1].MedianDowntimes {
		t.Fatal("IN should have more downtimes than US")
	}
	if pts[0].Routers != 2 {
		t.Fatal("router count wrong")
	}
}

func TestMedianUptimeFraction(t *testing.T) {
	st := fixtureStore()
	us := MedianUptimeFraction(st, "US", win)
	in := MedianUptimeFraction(st, "IN", win)
	if us < 0.99 {
		t.Fatalf("US uptime %v", us)
	}
	if in > 0.85 || in < 0.4 {
		t.Fatalf("IN uptime %v", in)
	}
}

func TestClassifyAvailability(t *testing.T) {
	st := fixtureStore()
	if m := ClassifyAvailability(st, "us-1", win); m != ModeAlwaysOn {
		t.Fatalf("us-1 = %v", m)
	}
	// in-1 (50% availability) with no uptime reports → appliance.
	if m := ClassifyAvailability(st, "in-1", win); m != ModeAppliance {
		t.Fatalf("in-1 = %v", m)
	}
	// Short uptime counters at every report → still appliance.
	for d := 0; d < 10; d++ {
		st.Uptime = append(st.Uptime, dataset.UptimeReport{
			RouterID:   "in-1",
			ReportedAt: aFrom.Add(time.Duration(d)*24*time.Hour + 12*time.Hour),
			Uptime:     4 * time.Hour,
		})
	}
	if m := ClassifyAvailability(st, "in-1", win); m != ModeAppliance {
		t.Fatalf("in-1 with short counters = %v", m)
	}
	// A low-availability router whose uptime counters keep growing is a
	// flaky-ISP home (Fig. 6c): build one from in-1's heartbeats under a
	// new ID with long counters.
	for _, r := range st.Heartbeats.Runs("in-1") {
		st.Heartbeats.RecordRun("in-3", r)
	}
	st.RouterCountry["in-3"] = "IN"
	for d := 0; d < 10; d++ {
		st.Uptime = append(st.Uptime, dataset.UptimeReport{
			RouterID:   "in-3",
			ReportedAt: aFrom.Add(time.Duration(d)*24*time.Hour + 12*time.Hour),
			Uptime:     time.Duration(d+2) * 24 * time.Hour,
		})
	}
	if m := ClassifyAvailability(st, "in-3", win); m != ModeFlakyISP {
		t.Fatalf("in-3 = %v", m)
	}
}

func TestFractionWithFrequentDowntime(t *testing.T) {
	st := fixtureStore()
	// Developing homes all exceed one downtime per 3 days.
	if f := FractionWithFrequentDowntime(st, Developing, win, 3); f != 1 {
		t.Fatalf("developing frequent fraction %v", f)
	}
	if f := FractionWithFrequentDowntime(st, Developed, win, 10); f > 0.5 {
		t.Fatalf("developed frequent fraction %v", f)
	}
}

func dev(n uint32) mac.Addr { return mac.FromOUI(0x001CB3, n) } // Apple OUI

func addCensus(st *dataset.Store, id string, at time.Time, wired, w24, w5 []mac.Addr) {
	st.Counts = append(st.Counts, dataset.DeviceCount{
		RouterID: id, At: at, Wired: len(wired), W24: len(w24), W5: len(w5),
	})
	add := func(list []mac.Addr, kind dataset.ConnKind) {
		for _, hw := range list {
			st.Sightings = append(st.Sightings, dataset.DeviceSighting{
				RouterID: id, At: at, Device: hw, Kind: kind,
			})
		}
	}
	add(wired, dataset.Wired)
	add(w24, dataset.Wireless24)
	add(w5, dataset.Wireless5)
}

func TestUniqueDevicesPerHomeAndBand(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	addCensus(st, "us-1", aFrom, []mac.Addr{dev(1)}, []mac.Addr{dev(2), dev(3)}, []mac.Addr{dev(4)})
	addCensus(st, "us-1", aFrom.Add(time.Hour), []mac.Addr{dev(1)}, []mac.Addr{dev(2), dev(5)}, nil)
	uniq := UniqueDevicesPerHome(st)
	if uniq["us-1"] != 5 {
		t.Fatalf("unique = %d, want 5", uniq["us-1"])
	}
	b24, b5 := UniqueDevicesPerBand(st)
	if len(b24) != 1 || b24[0] != 3 {
		t.Fatalf("b24 = %v", b24)
	}
	if len(b5) != 1 || b5[0] != 1 {
		t.Fatalf("b5 = %v", b5)
	}
}

func TestConnectedByGroup(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.RouterCountry["in-1"] = "IN"
	addCensus(st, "us-1", aFrom, []mac.Addr{dev(1)}, []mac.Addr{dev(2), dev(3)}, []mac.Addr{dev(4)})
	addCensus(st, "in-1", aFrom, nil, []mac.Addr{dev(5)}, nil)
	got := ConnectedByGroup(st)
	d := got[Developed]
	if d.Wired.Mean != 1 || d.Wireless.Mean != 3 || d.W5.Mean != 1 {
		t.Fatalf("developed %+v", d)
	}
	g := got[Developing]
	if g.Wired.Mean != 0 || g.Wireless.Mean != 1 {
		t.Fatalf("developing %+v", g)
	}
}

func TestAlwaysConnected(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.RouterCountry["us-2"] = "US"
	span := 36 * 24 * time.Hour // > 5 weeks
	n := 40
	step := span / time.Duration(n)
	for i := 0; i <= n; i++ {
		at := aFrom.Add(time.Duration(i) * step)
		// us-1: dev(1) wired in every census; dev(2) wireless intermittent.
		w24 := []mac.Addr{}
		if i%2 == 0 {
			w24 = append(w24, dev(2))
		}
		addCensus(st, "us-1", at, []mac.Addr{dev(1)}, w24, nil)
		// us-2: nothing constant.
		var wired []mac.Addr
		if i%3 == 0 {
			wired = append(wired, dev(3))
		}
		addCensus(st, "us-2", at, wired, nil, nil)
	}
	got := AlwaysConnected(st, 35*24*time.Hour)
	d := got[Developed]
	if d.Homes != 2 {
		t.Fatalf("homes = %d", d.Homes)
	}
	if d.WithWired != 1 || d.WithWireless != 0 {
		t.Fatalf("always-connected %+v", d)
	}
	if d.WiredShare != 0.5 {
		t.Fatalf("share %v", d.WiredShare)
	}
}

func TestAlwaysConnectedRequiresSpan(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	// Only 2 days of censuses: span too short to qualify.
	for i := 0; i < 48; i++ {
		addCensus(st, "us-1", aFrom.Add(time.Duration(i)*time.Hour), []mac.Addr{dev(1)}, nil, nil)
	}
	got := AlwaysConnected(st, 35*24*time.Hour)
	if got[Developed].WithWired != 0 {
		t.Fatal("short span counted as always-connected")
	}
}

func TestVisibleAPsByGroup(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.RouterCountry["in-1"] = "IN"
	for i := 0; i < 10; i++ {
		at := aFrom.Add(time.Duration(i) * 10 * time.Minute)
		st.WiFi = append(st.WiFi,
			dataset.WiFiScan{RouterID: "us-1", At: at, Band: "2.4GHz", Channel: 11, VisibleAPs: 20},
			dataset.WiFiScan{RouterID: "us-1", At: at, Band: "5GHz", Channel: 36, VisibleAPs: 1},
			dataset.WiFiScan{RouterID: "in-1", At: at, Band: "2.4GHz", Channel: 11, VisibleAPs: 2},
		)
	}
	got := VisibleAPsByGroup(st)
	if len(got[Developed]) != 1 || got[Developed][0] != 20 {
		t.Fatalf("developed %v", got[Developed])
	}
	if len(got[Developing]) != 1 || got[Developing][0] != 2 {
		t.Fatalf("developing %v", got[Developing])
	}
}

func TestAllFourPortsShare(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.RouterCountry["us-2"] = "US"
	addCensus(st, "us-1", aFrom, []mac.Addr{dev(1), dev(2), dev(3), dev(4)}, nil, nil)
	addCensus(st, "us-2", aFrom, []mac.Addr{dev(5)}, nil, nil)
	if got := AllFourPortsShare(st, Developed); got != 0.5 {
		t.Fatalf("share = %v", got)
	}
}

func TestManufacturerHistogram(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	apple1, apple2 := dev(10), dev(11)
	roku := mac.FromOUI(0xB0A737, 1)
	netgear := mac.FromOUI(0x204E7F, 1)
	tiny := dev(12)
	flow := func(d mac.Addr, b int64) {
		st.Flows = append(st.Flows, dataset.FlowRecord{
			RouterID: "us-1", Device: d, Domain: "netflix.com", Proto: "tcp",
			DownBytes: b, Conns: 1,
		})
	}
	flow(apple1, 1e6)
	flow(apple2, 2e6)
	flow(roku, 5e8)
	flow(netgear, 1e9) // must be excluded
	flow(tiny, 10)     // below 100 KB floor

	hist := ManufacturerHistogram(st, 100_000)
	if len(hist) != 2 {
		t.Fatalf("hist = %v", hist)
	}
	if hist[0].Category != "Apple" || hist[0].Devices != 2 {
		t.Fatalf("top = %+v", hist[0])
	}
	if hist[1].Category != "InternetTV" || hist[1].Devices != 1 {
		t.Fatalf("second = %+v", hist[1])
	}
}

func TestDiurnalDevices(t *testing.T) {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US" // UTC-5
	// Monday 2012-10-01. Census at 20:00 local = 01:00 UTC next day.
	evening := time.Date(2012, 10, 2, 1, 0, 0, 0, time.UTC)
	afternoon := time.Date(2012, 10, 1, 19, 0, 0, 0, time.UTC) // 14:00 local
	saturday := time.Date(2012, 10, 7, 1, 0, 0, 0, time.UTC)   // Sat 20:00 local
	st.Counts = append(st.Counts,
		dataset.DeviceCount{RouterID: "us-1", At: evening, W24: 4},
		dataset.DeviceCount{RouterID: "us-1", At: afternoon, W24: 1},
		dataset.DeviceCount{RouterID: "us-1", At: saturday, W24: 3},
	)
	weekday, weekend := DiurnalDevices(st)
	if weekday.Means()[20] != 4 || weekday.Means()[14] != 1 {
		t.Fatalf("weekday bins wrong: %v", weekday.Means())
	}
	if weekend.Means()[20] != 3 {
		t.Fatalf("weekend bins wrong: %v", weekend.Means())
	}
}

func usageStore() *dataset.Store {
	st := dataset.NewStore()
	st.RouterCountry["us-1"] = "US"
	st.Capacity = append(st.Capacity,
		dataset.CapacityMeasure{RouterID: "us-1", MeasuredAt: aFrom, UpBps: 2e6, DownBps: 16e6})
	// Throughput: mostly low, one high minute.
	for i := 0; i < 20; i++ {
		peak := 2e6
		if i == 19 {
			peak = 8e6
		}
		st.Throughput = append(st.Throughput, dataset.ThroughputSample{
			RouterID: "us-1", Minute: aFrom.Add(time.Duration(i) * time.Minute),
			Dir: "down", PeakBps: peak, TotalBytes: 1e6,
		})
	}
	// Flows: device A dominates; netflix dominates by volume with few
	// conns; google many conns low volume.
	a, b := dev(1), dev(2)
	st.Flows = append(st.Flows,
		dataset.FlowRecord{RouterID: "us-1", Device: a, Domain: "netflix.com", DownBytes: 8e8, Conns: 4},
		dataset.FlowRecord{RouterID: "us-1", Device: a, Domain: "google.com", DownBytes: 5e7, Conns: 60},
		dataset.FlowRecord{RouterID: "us-1", Device: b, Domain: "google.com", DownBytes: 1e8, Conns: 40},
		dataset.FlowRecord{RouterID: "us-1", Device: b, Domain: "anon-123456789abc", DownBytes: 5e7, Conns: 10},
	)
	return st
}

func TestSaturation(t *testing.T) {
	st := usageStore()
	sats := Saturation(st)
	if len(sats) != 1 {
		t.Fatalf("points = %d", len(sats))
	}
	s := sats[0]
	if s.Dir != "down" || s.CapacityBps != 16e6 {
		t.Fatalf("%+v", s)
	}
	// 95th percentile of mostly-2e6 with one 8e6 → below capacity.
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization %v", s.Utilization)
	}
}

func TestUtilizationSeriesSorted(t *testing.T) {
	st := usageStore()
	series := UtilizationSeries(st, "us-1", "down")
	if len(series) != 20 {
		t.Fatalf("len = %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Minute.Before(series[i-1].Minute) {
			t.Fatal("unsorted")
		}
	}
}

func TestDeviceShares(t *testing.T) {
	st := usageStore()
	shares := DeviceShares(st)["us-1"]
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0] < 0.8 { // 8.5e8 of 1e9
		t.Fatalf("top share = %v", shares[0])
	}
	if top := MeanTopDeviceShare(st, 2); top != shares[0] {
		t.Fatalf("mean top = %v", top)
	}
}

func TestPopularDomains(t *testing.T) {
	st := usageStore()
	pop := PopularDomains(st)
	if len(pop) == 0 || pop[0].Top5 != 1 {
		t.Fatalf("pop = %v", pop)
	}
}

func TestDomainShares(t *testing.T) {
	st := usageStore()
	curves := DomainShares(st, 5)
	// netflix: 8e8 of 1e9 = 80% volume but 4/114 conns.
	if curves.VolumeShare[0] < 0.7 {
		t.Fatalf("top volume share %v", curves.VolumeShare[0])
	}
	if curves.ConnShareByVolRank[0] > 0.2 {
		t.Fatalf("conn share of top-by-volume %v", curves.ConnShareByVolRank[0])
	}
	// google has most conns: 100/114.
	if curves.ConnShareByConnRank[0] < 0.5 {
		t.Fatalf("top conn share %v", curves.ConnShareByConnRank[0])
	}
}

func TestWhitelistedVolumeShare(t *testing.T) {
	st := usageStore()
	got := WhitelistedVolumeShare(st)
	want := (8e8 + 5e7 + 1e8) / 1e9
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("share = %v, want %v", got, want)
	}
}

func TestDeviceDomainsFingerprint(t *testing.T) {
	st := usageStore()
	top := TopDevicesByVolume(st)
	if len(top) != 2 || top[0] != dev(1) {
		t.Fatalf("top devices %v", top)
	}
	mix := DeviceDomains(st, dev(1))
	if mix[0].Domain != "netflix.com" || mix[0].Share < 0.9 {
		t.Fatalf("mix = %v", mix)
	}
	if DeviceDomains(st, dev(99)) != nil {
		t.Fatal("unknown device has a mix")
	}
}

func TestClassifyDowntime(t *testing.T) {
	st := fixtureStore()
	gap := heartbeat.Downtime{
		Start: aFrom.Add(10 * time.Hour),
		End:   aFrom.Add(11 * time.Hour),
	}
	// No uptime reports at all → unknown.
	if c := ClassifyDowntime(st, "us-2", gap); c != CauseUnknown {
		t.Fatalf("no reports: %v", c)
	}
	// Counter spanning the gap → network outage.
	st.Uptime = append(st.Uptime, dataset.UptimeReport{
		RouterID: "us-2", ReportedAt: aFrom.Add(12 * time.Hour), Uptime: 12 * time.Hour,
	})
	if c := ClassifyDowntime(st, "us-2", gap); c != CauseNetwork {
		t.Fatalf("spanning counter: %v", c)
	}
	// Counter starting inside the gap → power-off.
	st2 := fixtureStore()
	st2.Uptime = append(st2.Uptime, dataset.UptimeReport{
		RouterID: "us-2", ReportedAt: aFrom.Add(12 * time.Hour), Uptime: 70 * time.Minute,
	})
	if c := ClassifyDowntime(st2, "us-2", gap); c != CausePowerOff {
		t.Fatalf("reset counter: %v", c)
	}
	// Report too far after the gap → unknown.
	st3 := fixtureStore()
	st3.Uptime = append(st3.Uptime, dataset.UptimeReport{
		RouterID: "us-2", ReportedAt: aFrom.Add(9 * 24 * time.Hour), Uptime: time.Hour,
	})
	if c := ClassifyDowntime(st3, "us-2", gap); c != CauseUnknown {
		t.Fatalf("stale report: %v", c)
	}
}

func TestDowntimeCausesTally(t *testing.T) {
	st := fixtureStore()
	// Give in-2 spanning counters so its gaps classify as network.
	for d := 0; d < 10; d++ {
		st.Uptime = append(st.Uptime, dataset.UptimeReport{
			RouterID:   "in-2",
			ReportedAt: aFrom.Add(time.Duration(d)*24*time.Hour + 20*time.Hour),
			Uptime:     time.Duration(d)*24*time.Hour + 20*time.Hour,
		})
	}
	tally := DowntimeCauses(st, Developing, win)
	if tally[CauseNetwork] == 0 {
		t.Fatalf("tally %v", tally)
	}
}
