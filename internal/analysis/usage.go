package analysis

import (
	"sort"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/domains"
	"natpeek/internal/geo"
	"natpeek/internal/mac"
	"natpeek/internal/stats"
)

// localHour converts a UTC instant to the router's local hour and weekend
// flag using the deployment roster.
func localHour(st *dataset.Store, id string, at time.Time) (hour int, weekend bool, ok bool) {
	code, found := st.RouterCountry[id]
	if !found {
		return 0, false, false
	}
	c, found := geo.Lookup(code)
	if !found {
		return 0, false, false
	}
	local := at.Add(c.UTCOffset)
	d := local.Weekday()
	return local.Hour(), d == time.Saturday || d == time.Sunday, true
}

// DiurnalDevices aggregates the Devices censuses into mean connected
// wireless devices per local hour, split weekday/weekend — Fig. 13.
func DiurnalDevices(st *dataset.Store) (weekday, weekend stats.HourBins) {
	for _, c := range st.Counts {
		h, we, ok := localHour(st, c.RouterID, c.At)
		if !ok {
			continue
		}
		v := float64(c.W24 + c.W5)
		if we {
			weekend.Add(h, v)
		} else {
			weekday.Add(h, v)
		}
	}
	return weekday, weekend
}

// HomeCapacity returns a home's median measured capacity per direction
// over the Capacity data set.
func HomeCapacity(st *dataset.Store, id string) (upBps, downBps float64) {
	var ups, downs []float64
	for _, c := range st.Capacity {
		if c.RouterID != id {
			continue
		}
		if c.UpBps > 0 {
			ups = append(ups, c.UpBps)
		}
		if c.DownBps > 0 {
			downs = append(downs, c.DownBps)
		}
	}
	if len(ups) > 0 {
		upBps = stats.Median(ups)
	}
	if len(downs) > 0 {
		downBps = stats.Median(downs)
	}
	return
}

// LinkSaturation is one Fig. 15 point: a home's capacity vs its 95th
// percentile utilization in one direction.
type LinkSaturation struct {
	RouterID    string
	Dir         string
	CapacityBps float64
	P95Bps      float64
	Utilization float64 // P95 / capacity; can exceed 1 under bufferbloat
}

// Saturation computes Fig. 15: per home and direction, the 95th
// percentile of per-minute peak throughput against measured capacity,
// over minutes with any traffic.
func Saturation(st *dataset.Store) []LinkSaturation {
	type key struct {
		id, dir string
	}
	peaks := map[key][]float64{}
	for _, s := range st.Throughput {
		k := key{s.RouterID, s.Dir}
		peaks[k] = append(peaks[k], s.PeakBps)
	}
	var out []LinkSaturation
	for k, ps := range peaks {
		up, down := HomeCapacity(st, k.id)
		capBps := down
		if k.dir == "up" {
			capBps = up
		}
		if capBps <= 0 || len(ps) == 0 {
			continue
		}
		p95 := stats.Percentile(ps, 95)
		out = append(out, LinkSaturation{
			RouterID:    k.id,
			Dir:         k.dir,
			CapacityBps: capBps,
			P95Bps:      p95,
			Utilization: p95 / capBps,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RouterID != out[j].RouterID {
			return out[i].RouterID < out[j].RouterID
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// UtilizationPoint is one sample of a home's utilization time series
// (Fig. 14/16).
type UtilizationPoint struct {
	Minute  time.Time
	PeakBps float64
}

// UtilizationSeries returns a home's per-minute peak throughput series in
// one direction, sorted by time.
func UtilizationSeries(st *dataset.Store, id, dir string) []UtilizationPoint {
	var out []UtilizationPoint
	for _, s := range st.Throughput {
		if s.RouterID == id && s.Dir == dir {
			out = append(out, UtilizationPoint{s.Minute, s.PeakBps})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Minute.Before(out[j].Minute) })
	return out
}

// DeviceShares computes Fig. 17: for each home, the descending fractional
// volume contribution of its devices.
func DeviceShares(st *dataset.Store) map[string][]float64 {
	vol := map[string]map[mac.Addr]float64{}
	for _, f := range st.Flows {
		m := vol[f.RouterID]
		if m == nil {
			m = map[mac.Addr]float64{}
			vol[f.RouterID] = m
		}
		m[f.Device] += float64(f.Bytes())
	}
	out := map[string][]float64{}
	for id, m := range vol {
		var vs []float64
		for _, v := range m {
			vs = append(vs, v)
		}
		out[id] = stats.Share(vs)
	}
	return out
}

// MeanTopDeviceShare averages the dominant device's share across homes
// with at least minDevices devices (§6.3: ≈60–65%).
func MeanTopDeviceShare(st *dataset.Store, minDevices int) float64 {
	var tops []float64
	for _, shares := range DeviceShares(st) {
		if len(shares) >= minDevices {
			tops = append(tops, shares[0])
		}
	}
	return stats.Mean(tops)
}

// DomainPopularity counts how many homes have a domain in their top-5 and
// top-10 by volume — Fig. 18. Only named (whitelisted) domains count.
type DomainPopularity struct {
	Domain string
	Top5   int
	Top10  int
}

// PopularDomains computes Fig. 18 ranked by top-5 appearances.
func PopularDomains(st *dataset.Store) []DomainPopularity {
	perHome := map[string]map[string]float64{}
	for _, f := range st.Flows {
		// Fig. 18 plots nameable domains; obfuscated tokens cannot appear
		// on its x-axis.
		if f.Domain == "" || isAnonToken(f.Domain) {
			continue
		}
		m := perHome[f.RouterID]
		if m == nil {
			m = map[string]float64{}
			perHome[f.RouterID] = m
		}
		m[f.Domain] += float64(f.Bytes())
	}
	top5 := stats.NewCounter()
	top10 := stats.NewCounter()
	for _, m := range perHome {
		type dv struct {
			d string
			v float64
		}
		var ds []dv
		for d, v := range m {
			ds = append(ds, dv{d, v})
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].v != ds[j].v {
				return ds[i].v > ds[j].v
			}
			return ds[i].d < ds[j].d
		})
		for i, e := range ds {
			if i < 5 {
				top5.Add(e.d, 1)
			}
			if i < 10 {
				top10.Add(e.d, 1)
			} else {
				break
			}
		}
	}
	var out []DomainPopularity
	for _, rc := range top10.Ranked() {
		out = append(out, DomainPopularity{
			Domain: rc.Key,
			Top5:   top5.Get(rc.Key),
			Top10:  rc.Count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Top5 != out[j].Top5 {
			return out[i].Top5 > out[j].Top5
		}
		if out[i].Top10 != out[j].Top10 {
			return out[i].Top10 > out[j].Top10
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// DomainShareCurves computes Fig. 19: per home, domains ranked by volume
// with their volume share, connection share, and the connection share of
// the top-by-volume ranks. Returns the mean curves across homes, truncated
// to maxRank.
type DomainShareCurves struct {
	// VolumeShare[i] is the mean share of total volume of each home's
	// rank-(i+1) domain by volume (Fig. 19a).
	VolumeShare []float64
	// ConnShareByConnRank[i] is the mean share of connections of each
	// home's rank-(i+1) domain by connections (Fig. 19b).
	ConnShareByConnRank []float64
	// ConnShareByVolRank[i] is the mean share of connections of each
	// home's rank-(i+1) domain *by volume* (Fig. 19c).
	ConnShareByVolRank []float64
}

// DomainShares computes the Fig. 19 curves.
func DomainShares(st *dataset.Store, maxRank int) DomainShareCurves {
	type homeAgg struct {
		vol   map[string]float64
		conns map[string]float64
	}
	homes := map[string]*homeAgg{}
	for _, f := range st.Flows {
		if f.Domain == "" {
			continue
		}
		h := homes[f.RouterID]
		if h == nil {
			h = &homeAgg{vol: map[string]float64{}, conns: map[string]float64{}}
			homes[f.RouterID] = h
		}
		h.vol[f.Domain] += float64(f.Bytes())
		h.conns[f.Domain] += float64(f.Conns)
	}
	volSum := make([]float64, maxRank)
	connSum := make([]float64, maxRank)
	connByVolSum := make([]float64, maxRank)
	n := 0
	for _, h := range homes {
		var volTotal, connTotal float64
		for _, v := range h.vol {
			volTotal += v
		}
		for _, c := range h.conns {
			connTotal += c
		}
		if volTotal == 0 || connTotal == 0 {
			continue
		}
		n++
		// Rank by volume.
		type dv struct {
			d string
			v float64
		}
		var byVol, byConn []dv
		for d, v := range h.vol {
			byVol = append(byVol, dv{d, v})
		}
		for d, c := range h.conns {
			byConn = append(byConn, dv{d, c})
		}
		less := func(s []dv) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].v != s[j].v {
					return s[i].v > s[j].v
				}
				return s[i].d < s[j].d
			}
		}
		sort.Slice(byVol, less(byVol))
		sort.Slice(byConn, less(byConn))
		for i := 0; i < maxRank && i < len(byVol); i++ {
			volSum[i] += byVol[i].v / volTotal
			connByVolSum[i] += h.conns[byVol[i].d] / connTotal
		}
		for i := 0; i < maxRank && i < len(byConn); i++ {
			connSum[i] += byConn[i].v / connTotal
		}
	}
	out := DomainShareCurves{
		VolumeShare:         make([]float64, maxRank),
		ConnShareByConnRank: make([]float64, maxRank),
		ConnShareByVolRank:  make([]float64, maxRank),
	}
	if n == 0 {
		return out
	}
	for i := 0; i < maxRank; i++ {
		out.VolumeShare[i] = volSum[i] / float64(n)
		out.ConnShareByConnRank[i] = connSum[i] / float64(n)
		out.ConnShareByVolRank[i] = connByVolSum[i] / float64(n)
	}
	return out
}

// WhitelistedVolumeShare returns the fraction of Traffic volume going to
// named (non-anonymized) domains (§6.4: ≈65%).
func WhitelistedVolumeShare(st *dataset.Store) float64 {
	var named, total float64
	for _, f := range st.Flows {
		b := float64(f.Bytes())
		total += b
		if f.Domain != "" && !isAnonToken(f.Domain) {
			named += b
		}
	}
	if total == 0 {
		return 0
	}
	return named / total
}

func isAnonToken(d string) bool {
	return len(d) > 5 && d[:5] == "anon-"
}

// DeviceDomainMix returns one device's volume distribution over domains —
// Fig. 20's fingerprinting view. Shares are of the device's total volume,
// ranked descending.
type DomainShare struct {
	Domain string
	Share  float64
}

// DeviceDomains computes the Fig. 20 mix for a device.
func DeviceDomains(st *dataset.Store, dev mac.Addr) []DomainShare {
	vol := map[string]float64{}
	total := 0.0
	for _, f := range st.Flows {
		if f.Device != dev {
			continue
		}
		vol[f.Domain] += float64(f.Bytes())
		total += float64(f.Bytes())
	}
	if total == 0 {
		return nil
	}
	var out []DomainShare
	for d, v := range vol {
		out = append(out, DomainShare{Domain: d, Share: v / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// TopDevicesByVolume lists the Traffic data set's devices ranked by
// volume (used to pick Fig. 20 subjects).
func TopDevicesByVolume(st *dataset.Store) []mac.Addr {
	vol := map[mac.Addr]float64{}
	for _, f := range st.Flows {
		vol[f.Device] += float64(f.Bytes())
	}
	devs := make([]mac.Addr, 0, len(vol))
	for d := range vol {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(i, j int) bool {
		if vol[devs[i]] != vol[devs[j]] {
			return vol[devs[i]] > vol[devs[j]]
		}
		return devs[i].String() < devs[j].String()
	})
	return devs
}

// GroupUsage summarizes Traffic-data usage structure per country group —
// the §7 extension ("Expanding the study of usage to more countries"):
// does the volume concentration the paper found in US homes hold
// elsewhere?
type GroupUsage struct {
	Homes            int
	WhitelistedShare float64 // of volume
	StreamingShare   float64 // of volume, by domain category
	TopDomainShare   float64 // mean per-home top-domain volume share
	TotalBytes       int64
}

// UsageByGroup computes the extension comparison.
func UsageByGroup(st *dataset.Store) map[Group]GroupUsage {
	type agg struct {
		named, streaming, total float64
		homes                   map[string]bool
	}
	groups := map[Group]*agg{
		Developed:  {homes: map[string]bool{}},
		Developing: {homes: map[string]bool{}},
	}
	for _, f := range st.Flows {
		dev, ok := isDeveloped(st, f.RouterID)
		if !ok {
			continue
		}
		g := Developing
		if dev {
			g = Developed
		}
		a := groups[g]
		b := float64(f.Bytes())
		a.total += b
		a.homes[f.RouterID] = true
		if f.Domain != "" && !isAnonToken(f.Domain) {
			a.named += b
			if domains.CategoryOf(f.Domain) == domains.Streaming {
				a.streaming += b
			}
		}
	}
	// Mean per-home top-domain share, split by group.
	topByHome := map[string]float64{}
	for id, shares := range perHomeDomainShares(st) {
		if len(shares) > 0 {
			topByHome[id] = shares[0]
		}
	}
	out := map[Group]GroupUsage{}
	for g, a := range groups {
		gu := GroupUsage{Homes: len(a.homes), TotalBytes: int64(a.total)}
		if a.total > 0 {
			gu.WhitelistedShare = a.named / a.total
			gu.StreamingShare = a.streaming / a.total
		}
		var tops []float64
		for id, top := range topByHome {
			dev, ok := isDeveloped(st, id)
			if ok && dev == (g == Developed) {
				tops = append(tops, top)
			}
		}
		if len(tops) > 0 {
			gu.TopDomainShare = stats.Mean(tops)
		}
		out[g] = gu
	}
	return out
}

// perHomeDomainShares returns each home's descending domain volume
// shares (named domains only).
func perHomeDomainShares(st *dataset.Store) map[string][]float64 {
	vol := map[string]map[string]float64{}
	for _, f := range st.Flows {
		if f.Domain == "" {
			continue
		}
		m := vol[f.RouterID]
		if m == nil {
			m = map[string]float64{}
			vol[f.RouterID] = m
		}
		m[f.Domain] += float64(f.Bytes())
	}
	out := map[string][]float64{}
	for id, m := range vol {
		var vs []float64
		for _, v := range m {
			vs = append(vs, v)
		}
		out[id] = stats.Share(vs)
	}
	return out
}
