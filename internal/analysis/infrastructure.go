package analysis

import (
	"sort"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/ouidb"
	"natpeek/internal/stats"
)

// UniqueDevicesPerHome counts the distinct (anonymized) devices each home
// ever connected — Fig. 7's distribution.
func UniqueDevicesPerHome(st *dataset.Store) map[string]int {
	seen := map[string]map[mac.Addr]bool{}
	for _, s := range st.Sightings {
		m := seen[s.RouterID]
		if m == nil {
			m = map[mac.Addr]bool{}
			seen[s.RouterID] = m
		}
		m[s.Device] = true
	}
	out := make(map[string]int, len(seen))
	for id, m := range seen {
		out[id] = len(m)
	}
	return out
}

// ConnectedAverages is Fig. 8/9's summary: the mean (and stddev) number of
// devices connected at any given census instant, split by kind.
type ConnectedAverages struct {
	Wired, Wireless, W24, W5 stats.Summary
}

// ConnectedByGroup computes per-group connected-device averages across
// all census rows.
func ConnectedByGroup(st *dataset.Store) map[Group]ConnectedAverages {
	samples := map[Group]struct{ wired, wireless, w24, w5 []float64 }{}
	for _, c := range st.Counts {
		dev, ok := isDeveloped(st, c.RouterID)
		if !ok {
			continue
		}
		g := Developing
		if dev {
			g = Developed
		}
		s := samples[g]
		s.wired = append(s.wired, float64(c.Wired))
		s.wireless = append(s.wireless, float64(c.W24+c.W5))
		s.w24 = append(s.w24, float64(c.W24))
		s.w5 = append(s.w5, float64(c.W5))
		samples[g] = s
	}
	out := map[Group]ConnectedAverages{}
	for g, s := range samples {
		out[g] = ConnectedAverages{
			Wired:    stats.Summarize(s.wired),
			Wireless: stats.Summarize(s.wireless),
			W24:      stats.Summarize(s.w24),
			W5:       stats.Summarize(s.w5),
		}
	}
	return out
}

// UniqueDevicesPerBand counts each home's distinct devices per wireless
// band — Fig. 10 (paper: median 5 on 2.4 GHz, 2 on 5 GHz).
func UniqueDevicesPerBand(st *dataset.Store) (b24, b5 []float64) {
	type key struct {
		id   string
		kind dataset.ConnKind
	}
	seen := map[key]map[mac.Addr]bool{}
	homes := map[string]bool{}
	for _, s := range st.Sightings {
		homes[s.RouterID] = true
		if s.Kind == dataset.Wired {
			continue
		}
		k := key{s.RouterID, s.Kind}
		m := seen[k]
		if m == nil {
			m = map[mac.Addr]bool{}
			seen[k] = m
		}
		m[s.Device] = true
	}
	for id := range homes {
		b24 = append(b24, float64(len(seen[key{id, dataset.Wireless24}])))
		b5 = append(b5, float64(len(seen[key{id, dataset.Wireless5}])))
	}
	sort.Float64s(b24)
	sort.Float64s(b5)
	return b24, b5
}

// AlwaysConnectedShare computes Table 5: the fraction of homes in each
// group with at least one device present in *every* census its router
// took over a span of at least minSpan (five weeks in the paper), split
// by wired/wireless attachment.
type AlwaysConnectedShare struct {
	Homes         int
	WithWired     int
	WithWireless  int
	WiredShare    float64
	WirelessShare float64
}

// AlwaysConnected computes Table 5 per group.
func AlwaysConnected(st *dataset.Store, minSpan time.Duration) map[Group]AlwaysConnectedShare {
	// Census instants per router.
	censuses := map[string][]time.Time{}
	for _, c := range st.Counts {
		censuses[c.RouterID] = append(censuses[c.RouterID], c.At)
	}
	// Sightings grouped per router, then per device, so the scan below
	// only visits each home's own devices (a flat device map made this
	// O(homes × fleet-wide devices), which bites at fleet scale).
	type devInfo struct {
		count int
		kind  dataset.ConnKind
	}
	sightings := map[string]map[mac.Addr]*devInfo{}
	for _, s := range st.Sightings {
		m := sightings[s.RouterID]
		if m == nil {
			m = map[mac.Addr]*devInfo{}
			sightings[s.RouterID] = m
		}
		d := m[s.Device]
		if d == nil {
			d = &devInfo{}
			m[s.Device] = d
		}
		d.count++
		d.kind = s.Kind
	}
	out := map[Group]AlwaysConnectedShare{}
	for id, cs := range censuses {
		dev, ok := isDeveloped(st, id)
		if !ok || len(cs) == 0 {
			continue
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].Before(cs[j]) })
		span := cs[len(cs)-1].Sub(cs[0])
		g := Developing
		if dev {
			g = Developed
		}
		share := out[g]
		share.Homes++
		if span >= minSpan {
			wired, wireless := false, false
			for _, d := range sightings[id] {
				if d.count < len(cs) {
					continue
				}
				if d.kind == dataset.Wired {
					wired = true
				} else {
					wireless = true
				}
			}
			if wired {
				share.WithWired++
			}
			if wireless {
				share.WithWireless++
			}
		}
		out[g] = share
	}
	for g, s := range out {
		if s.Homes > 0 {
			s.WiredShare = float64(s.WithWired) / float64(s.Homes)
			s.WirelessShare = float64(s.WithWireless) / float64(s.Homes)
		}
		out[g] = s
	}
	return out
}

// VisibleAPsByGroup returns each home's median number of 2.4 GHz visible
// APs, per group — Fig. 11 (developed median ≈20, developing ≈2).
func VisibleAPsByGroup(st *dataset.Store) map[Group][]float64 {
	perHome := map[string][]float64{}
	for _, s := range st.WiFi {
		if s.Band != "2.4GHz" {
			continue
		}
		perHome[s.RouterID] = append(perHome[s.RouterID], float64(s.VisibleAPs))
	}
	out := map[Group][]float64{}
	for id, aps := range perHome {
		dev, ok := isDeveloped(st, id)
		if !ok {
			continue
		}
		g := Developing
		if dev {
			g = Developed
		}
		out[g] = append(out[g], stats.Median(aps))
	}
	for g := range out {
		sort.Float64s(out[g])
	}
	return out
}

// AllFourPortsShare returns the fraction of homes that ever used all four
// Ethernet ports (§5.2: "only a few households use all four Ethernet
// ports (9%)").
func AllFourPortsShare(st *dataset.Store, g Group) float64 {
	maxWired := map[string]int{}
	for _, c := range st.Counts {
		if c.Wired > maxWired[c.RouterID] {
			maxWired[c.RouterID] = c.Wired
		}
	}
	ids := RoutersInGroup(st, g)
	if len(ids) == 0 {
		return 0
	}
	n := 0
	for _, id := range ids {
		if maxWired[id] >= 4 {
			n++
		}
	}
	return float64(n) / float64(len(ids))
}

// ManufacturerCount is one Fig. 12 bar.
type ManufacturerCount struct {
	Category ouidb.Category
	Devices  int
}

// ManufacturerHistogram counts devices per Fig. 12 category across the
// Traffic-subset homes, excluding the platform's own Netgear hardware and
// devices below the paper's 100 KB traffic floor.
func ManufacturerHistogram(st *dataset.Store, minBytes int64) []ManufacturerCount {
	// Volume per device across flows.
	vol := map[mac.Addr]int64{}
	for _, f := range st.Flows {
		vol[f.Device] += f.Bytes()
	}
	counts := map[ouidb.Category]map[mac.Addr]bool{}
	for dev, b := range vol {
		if b < minBytes || ouidb.IsBISmarkRouter(dev) {
			continue
		}
		e := ouidb.Lookup(dev)
		if e.Category == ouidb.CatUnknown {
			continue
		}
		m := counts[e.Category]
		if m == nil {
			m = map[mac.Addr]bool{}
			counts[e.Category] = m
		}
		m[dev] = true
	}
	var out []ManufacturerCount
	for cat, m := range counts {
		out = append(out, ManufacturerCount{Category: cat, Devices: len(m)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].Category < out[j].Category
	})
	return out
}
