package capmgmt

import (
	"testing"
	"time"

	"natpeek/internal/mac"
)

var (
	t0   = time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC)
	devA = mac.MustParse("a4:b1:97:00:00:01")
	devB = mac.MustParse("00:24:54:00:00:02")
)

func newMgr(capBytes int64) *Manager {
	return New(Plan{MonthlyCapBytes: capBytes, BillingDay: 1}, t0)
}

func TestPeriodStartBeforeBillingDay(t *testing.T) {
	m := New(Plan{BillingDay: 10}, time.Date(2013, 4, 5, 0, 0, 0, 0, time.UTC))
	want := time.Date(2013, 3, 10, 0, 0, 0, 0, time.UTC)
	if !m.PeriodStart().Equal(want) {
		t.Fatalf("period start %v, want %v", m.PeriodStart(), want)
	}
	m2 := New(Plan{BillingDay: 10}, time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC))
	want2 := time.Date(2013, 4, 10, 0, 0, 0, 0, time.UTC)
	if !m2.PeriodStart().Equal(want2) {
		t.Fatalf("period start %v, want %v", m2.PeriodStart(), want2)
	}
}

func TestRecordAccumulates(t *testing.T) {
	m := newMgr(1000)
	m.Record(devA, 300, t0)
	m.Record(devB, 200, t0.Add(time.Hour))
	if m.Used() != 500 || m.Remaining() != 500 {
		t.Fatalf("used=%d remaining=%d", m.Used(), m.Remaining())
	}
	by := m.ByDevice()
	if len(by) != 2 || by[0].Device != devA || by[0].Share != 0.6 {
		t.Fatalf("by device %+v", by)
	}
}

func TestAlertsFireOnceInOrder(t *testing.T) {
	m := newMgr(1000)
	if a := m.Record(devA, 400, t0); len(a) != 0 {
		t.Fatalf("early alert %v", a)
	}
	a := m.Record(devA, 200, t0.Add(time.Hour)) // 60% → crosses 0.5
	if len(a) != 1 || a[0].Threshold != 0.5 {
		t.Fatalf("alerts %v", a)
	}
	a = m.Record(devA, 500, t0.Add(2*time.Hour)) // 110% → crosses 0.8, 0.95, 1.0
	if len(a) != 3 || a[2].Threshold != 1.0 {
		t.Fatalf("alerts %v", a)
	}
	// Nothing re-fires.
	if a := m.Record(devA, 100, t0.Add(3*time.Hour)); len(a) != 0 {
		t.Fatalf("re-fired %v", a)
	}
	if len(m.Alerts()) != 4 {
		t.Fatalf("total alerts %d", len(m.Alerts()))
	}
}

func TestOverCap(t *testing.T) {
	m := newMgr(100)
	m.Record(devA, 100, t0)
	if !m.OverCap() || m.Remaining() != 0 {
		t.Fatal("cap not detected")
	}
}

func TestUncappedPlan(t *testing.T) {
	m := newMgr(0)
	if a := m.Record(devA, 1e9, t0); len(a) != 0 {
		t.Fatal("uncapped plan alerted")
	}
	if m.Remaining() != -1 || m.OverCap() {
		t.Fatal("uncapped semantics wrong")
	}
}

func TestBillingRollover(t *testing.T) {
	m := newMgr(1000)
	m.Record(devA, 900, t0)
	// Next month: usage resets, history records the period.
	next := time.Date(2013, 5, 2, 0, 0, 0, 0, time.UTC)
	m.Record(devA, 100, next)
	if m.Used() != 100 {
		t.Fatalf("used after rollover = %d", m.Used())
	}
	h := m.History()
	if len(h) != 1 || h[0].Used != 900 {
		t.Fatalf("history %+v", h)
	}
	// Alerts reset too: 0.5 fires again in the new period.
	if a := m.Record(devA, 500, next.Add(time.Hour)); len(a) != 1 {
		t.Fatalf("alerts after rollover %v", a)
	}
}

func TestRolloverSkipsMultipleMonths(t *testing.T) {
	m := newMgr(1000)
	m.Record(devA, 500, t0)
	m.Record(devA, 10, t0.AddDate(0, 3, 0))
	if len(m.History()) != 3 {
		t.Fatalf("history %d periods, want 3", len(m.History()))
	}
}

func TestProjection(t *testing.T) {
	m := newMgr(30000)
	// 10 days into a ~30-day period, 10000 used → projects ≈30000.
	tenDays := time.Date(2013, 4, 11, 0, 0, 0, 0, time.UTC)
	m.Record(devA, 10000, tenDays)
	proj := m.Projection(tenDays)
	if proj < 25000 || proj > 35000 {
		t.Fatalf("projection %d", proj)
	}
	if m.WillExceed(tenDays) {
		t.Fatal("projection should sit at the cap, not exceed")
	}
	m.Record(devA, 10000, tenDays)
	if !m.WillExceed(tenDays) {
		t.Fatal("doubled usage should project over cap")
	}
}

func TestThrottlePolicy(t *testing.T) {
	m := newMgr(1000)
	tp := ThrottlePolicy{StartAt: 0.9, HeavyShare: 0.5}
	m.Record(devA, 700, t0)
	m.Record(devB, 150, t0)
	// 85% used: nobody throttled.
	if tp.ShouldThrottle(m, devA) {
		t.Fatal("throttled below start threshold")
	}
	m.Record(devB, 60, t0) // 91%
	if !tp.ShouldThrottle(m, devA) {
		t.Fatal("heavy device not throttled at 91%")
	}
	if tp.ShouldThrottle(m, devB) {
		t.Fatal("light device throttled")
	}
	m.Record(devA, 100, t0) // over cap
	if !tp.ShouldThrottle(m, devB) {
		t.Fatal("over cap should throttle everyone")
	}
}

func TestThrottleUncapped(t *testing.T) {
	m := newMgr(0)
	m.Record(devA, 1e12, t0)
	if (ThrottlePolicy{}).ShouldThrottle(m, devA) {
		t.Fatal("uncapped plan throttled")
	}
}

func TestNegativeAndZeroRecordIgnored(t *testing.T) {
	m := newMgr(100)
	m.Record(devA, 0, t0)
	m.Record(devA, -50, t0)
	if m.Used() != 0 {
		t.Fatal("non-positive bytes recorded")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{At: t0, Threshold: 0.8, Used: 800, Cap: 1000}
	if s := a.String(); s == "" {
		t.Fatal("empty alert string")
	}
}
