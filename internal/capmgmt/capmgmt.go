// Package capmgmt implements the usage-cap management tool the paper's
// deployment carried (§3.1: "smaller recruitment efforts in various
// areas for a usage cap management tool that we built on top of the
// firmware [24]" — Kim et al., "Communicating with caps", SIGCOMM CCR
// 2011). Households on capped Internet plans see their monthly budget,
// how each device spends it, and projections of when the cap will be
// hit; the gateway can throttle or alert as thresholds pass.
//
// The manager consumes the same per-device accounting the passive
// monitor produces, so it runs on anonymized identifiers and needs no
// extra collection.
package capmgmt

import (
	"fmt"
	"sort"
	"time"

	"natpeek/internal/mac"
)

// Plan is a household's ISP data plan.
type Plan struct {
	// MonthlyCapBytes is the plan's data cap (0 = uncapped).
	MonthlyCapBytes int64
	// BillingDay is the day of month the cap resets (1–28).
	BillingDay int
	// AlertThresholds are fractions of the cap at which alerts fire
	// (default 0.5, 0.8, 0.95, 1.0).
	AlertThresholds []float64
}

func (p *Plan) fill() {
	if p.BillingDay < 1 || p.BillingDay > 28 {
		p.BillingDay = 1
	}
	if len(p.AlertThresholds) == 0 {
		p.AlertThresholds = []float64{0.5, 0.8, 0.95, 1.0}
	}
	sort.Float64s(p.AlertThresholds)
}

// Alert is one fired threshold crossing.
type Alert struct {
	At        time.Time
	Threshold float64 // fraction of cap
	Used      int64
	Cap       int64
}

func (a Alert) String() string {
	return fmt.Sprintf("%.0f%% of cap used (%d of %d bytes) at %s",
		a.Threshold*100, a.Used, a.Cap, a.At.Format("2006-01-02 15:04"))
}

// Manager tracks a household's usage against its plan.
type Manager struct {
	plan Plan

	periodStart time.Time
	used        int64
	perDevice   map[mac.Addr]int64
	fired       map[float64]bool
	alerts      []Alert
	// history keeps per-period totals for trend display.
	history []PeriodUsage
}

// PeriodUsage is one completed billing period.
type PeriodUsage struct {
	Start time.Time
	Used  int64
	Cap   int64
}

// New returns a manager for the plan, with the billing period containing
// now already open.
func New(plan Plan, now time.Time) *Manager {
	plan.fill()
	m := &Manager{
		plan:      plan,
		perDevice: make(map[mac.Addr]int64),
		fired:     make(map[float64]bool),
	}
	m.periodStart = periodStart(now, plan.BillingDay)
	return m
}

// periodStart returns the billing-period start containing now.
func periodStart(now time.Time, billingDay int) time.Time {
	y, mo, d := now.Date()
	start := time.Date(y, mo, billingDay, 0, 0, 0, 0, now.Location())
	if d < billingDay {
		start = start.AddDate(0, -1, 0)
	}
	return start
}

// Record adds bytes used by a device at time at, rolling the billing
// period if needed, and returns any alerts that fired.
func (m *Manager) Record(dev mac.Addr, bytes int64, at time.Time) []Alert {
	m.roll(at)
	if bytes <= 0 {
		return nil
	}
	m.used += bytes
	m.perDevice[dev] += bytes
	if m.plan.MonthlyCapBytes <= 0 {
		return nil
	}
	var fired []Alert
	frac := float64(m.used) / float64(m.plan.MonthlyCapBytes)
	for _, thr := range m.plan.AlertThresholds {
		if frac >= thr && !m.fired[thr] {
			m.fired[thr] = true
			a := Alert{At: at, Threshold: thr, Used: m.used, Cap: m.plan.MonthlyCapBytes}
			m.alerts = append(m.alerts, a)
			fired = append(fired, a)
		}
	}
	return fired
}

// roll closes finished billing periods up to at.
func (m *Manager) roll(at time.Time) {
	for {
		next := m.periodStart.AddDate(0, 1, 0)
		if at.Before(next) {
			return
		}
		m.history = append(m.history, PeriodUsage{
			Start: m.periodStart, Used: m.used, Cap: m.plan.MonthlyCapBytes,
		})
		m.periodStart = next
		m.used = 0
		m.perDevice = make(map[mac.Addr]int64)
		m.fired = make(map[float64]bool)
	}
}

// Used returns this period's consumption.
func (m *Manager) Used() int64 { return m.used }

// Cap returns the plan's monthly cap (0 = uncapped).
func (m *Manager) Cap() int64 { return m.plan.MonthlyCapBytes }

// Remaining returns bytes left under the cap (0 if over, cap if
// uncapped... an uncapped plan returns -1).
func (m *Manager) Remaining() int64 {
	if m.plan.MonthlyCapBytes <= 0 {
		return -1
	}
	r := m.plan.MonthlyCapBytes - m.used
	if r < 0 {
		return 0
	}
	return r
}

// OverCap reports whether the period's usage exceeds the cap.
func (m *Manager) OverCap() bool {
	return m.plan.MonthlyCapBytes > 0 && m.used >= m.plan.MonthlyCapBytes
}

// DeviceUsage is one device's share of the period.
type DeviceUsage struct {
	Device mac.Addr
	Bytes  int64
	Share  float64
}

// ByDevice returns the period's usage per device, descending — the
// paper's web interface showed exactly this ("observe and manage their
// usage over time and across devices").
func (m *Manager) ByDevice() []DeviceUsage {
	out := make([]DeviceUsage, 0, len(m.perDevice))
	for d, b := range m.perDevice {
		du := DeviceUsage{Device: d, Bytes: b}
		if m.used > 0 {
			du.Share = float64(b) / float64(m.used)
		}
		out = append(out, du)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Device.String() < out[j].Device.String()
	})
	return out
}

// Projection estimates period-end usage from the rate so far.
func (m *Manager) Projection(now time.Time) int64 {
	m.roll(now)
	elapsed := now.Sub(m.periodStart)
	if elapsed <= 0 {
		return m.used
	}
	total := m.periodStart.AddDate(0, 1, 0).Sub(m.periodStart)
	return int64(float64(m.used) * float64(total) / float64(elapsed))
}

// WillExceed reports whether the projection crosses the cap.
func (m *Manager) WillExceed(now time.Time) bool {
	return m.plan.MonthlyCapBytes > 0 && m.Projection(now) > m.plan.MonthlyCapBytes
}

// Alerts returns every alert fired this period.
func (m *Manager) Alerts() []Alert { return append([]Alert(nil), m.alerts...) }

// History returns completed periods, oldest first.
func (m *Manager) History() []PeriodUsage { return append([]PeriodUsage(nil), m.history...) }

// PeriodStart returns the open period's start.
func (m *Manager) PeriodStart() time.Time { return m.periodStart }

// ThrottlePolicy decides per-device throttling once usage nears the cap:
// the heaviest devices are slowed first, protecting light interactive
// use — the "communicating with caps" allocation idea.
type ThrottlePolicy struct {
	// StartAt is the cap fraction where throttling begins (default 0.9).
	StartAt float64
	// HeavyShare marks a device heavy if it used more than this share of
	// the period (default 0.3).
	HeavyShare float64
}

// ShouldThrottle reports whether dev should be rate-limited now.
func (tp ThrottlePolicy) ShouldThrottle(m *Manager, dev mac.Addr) bool {
	startAt := tp.StartAt
	if startAt <= 0 {
		startAt = 0.9
	}
	heavy := tp.HeavyShare
	if heavy <= 0 {
		heavy = 0.3
	}
	if m.plan.MonthlyCapBytes <= 0 {
		return false
	}
	frac := float64(m.used) / float64(m.plan.MonthlyCapBytes)
	if frac < startAt {
		return false
	}
	if frac >= 1 {
		return true // over cap: throttle everyone
	}
	for _, du := range m.ByDevice() {
		if du.Device == dev {
			return du.Share >= heavy
		}
	}
	return false
}
