// Package loadgen drives a collector with a synthetic router fleet. It
// is the platform's scale harness: N thousand routers' worth of
// realistic upload traffic — the row shapes the world simulator
// produces, without paying for full home simulation — pushed through
// the real /v1/* and /v1/batch HTTP endpoints over keep-alive
// connections, with ramp-up, duty cycling, and a configurable payload
// mix.
//
// Delivery is at-least-once with idempotency keys, exactly like the
// production gateway spool: any transport error, 5xx, or 429 is retried
// with backoff (honoring Retry-After), and every upload carries a
// router-prefixed key so server-side dedupe makes the retries safe.
// That lets the generator do strict accounting: every generated row is
// counted at generation time, and Run compares the collector's /v1/stats
// row counts before and after the run. A healthy run loses zero rows no
// matter how many requests were throttled, failed, or replayed.
package loadgen

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
	"natpeek/internal/wire"
)

// Mix weighs the upload endpoints in the generated traffic. Zero-valued
// mixes fall back to DefaultMix.
type Mix struct {
	Uptime     float64
	Capacity   float64
	Devices    float64
	WiFi       float64
	Flows      float64
	Throughput float64
}

// DefaultMix approximates a deployed router's upload profile: frequent
// passive measurements (flows, throughput), periodic active ones.
var DefaultMix = Mix{Uptime: 1, Capacity: 0.5, Devices: 1, WiFi: 1, Flows: 3, Throughput: 2}

func (m Mix) weights() []float64 {
	w := []float64{m.Uptime, m.Capacity, m.Devices, m.WiFi, m.Flows, m.Throughput}
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return DefaultMix.weights()
	}
	return w
}

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the collector's upload API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Routers is the synthetic fleet size.
	Routers int
	// Ramp spreads router start times uniformly across this window, so a
	// run models fleet-wide deployment rather than a thundering herd.
	Ramp time.Duration
	// Cycles is how many reporting cycles each router runs.
	Cycles int
	// Interval is the pause between a router's cycles; 0 runs cycles
	// back-to-back (time-compressed soak).
	Interval time.Duration
	// Duty is the probability a cycle actually reports (a powered-off
	// home skips cycles). 0 means always-on.
	Duty float64
	// PayloadsPerCycle is how many uploads an active cycle emits
	// (default 4), drawn from Mix.
	PayloadsPerCycle int
	// Mix weighs the endpoints; zero value uses DefaultMix.
	Mix Mix
	// FlowsPerPayload / SamplesPerPayload size the slice-valued payloads
	// (defaults 8 and 6).
	FlowsPerPayload   int
	SamplesPerPayload int
	// BatchSize groups uploads into /v1/batch POSTs (default 32).
	BatchSize int
	// DirectFraction routes this share of uploads as individual keyed
	// /v1/* POSTs instead of batches, covering both server paths
	// (default 0.1).
	DirectFraction float64
	// Workers is the HTTP delivery concurrency (default 8).
	Workers int
	// Wire selects the batch encoding: "binary" (default) ships NPB1,
	// matching what a deployed gateway negotiates; "json" forces the
	// legacy encoding so soaks keep covering that server path too.
	// Direct uploads are always JSON — /v1/* endpoints have no binary
	// form.
	Wire string
	// Gzip compresses batch request bodies with Content-Encoding: gzip.
	Gzip bool
	// Seed makes the generated rows deterministic. Idempotency keys get
	// a per-run nonce on top, so re-running the same seed against a
	// live server still stores fresh rows.
	Seed uint64
	// Start anchors generated timestamps (default 2013-04-01, the
	// BISmark study window).
	Start time.Time
	// Registrations: each router registers synchronously before its
	// first cycle (default true; disable only when re-driving a server
	// that already knows the fleet).
	SkipRegister bool
}

func (c Config) withDefaults() Config {
	if c.Routers <= 0 {
		c.Routers = 1
	}
	if c.Cycles <= 0 {
		c.Cycles = 1
	}
	if c.Duty <= 0 || c.Duty > 1 {
		c.Duty = 1
	}
	if c.PayloadsPerCycle <= 0 {
		c.PayloadsPerCycle = 4
	}
	if c.FlowsPerPayload <= 0 {
		c.FlowsPerPayload = 8
	}
	if c.SamplesPerPayload <= 0 {
		c.SamplesPerPayload = 6
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.DirectFraction < 0 || c.DirectFraction > 1 {
		c.DirectFraction = 0.1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Wire == "" {
		c.Wire = "binary"
	}
	return c
}

// Rows counts generated rows per data set.
type Rows struct {
	Uptime     int64
	Capacity   int64
	Counts     int64
	Sightings  int64
	WiFi       int64
	Flows      int64
	Throughput int64
}

// Total sums every data set.
func (r Rows) Total() int64 {
	return r.Uptime + r.Capacity + r.Counts + r.Sightings + r.WiFi + r.Flows + r.Throughput
}

// Report summarizes a load run.
type Report struct {
	Cfg      Config        `json:"-"`
	Routers  int           `json:"routers"`
	Duration time.Duration `json:"duration_ns"`

	Generated Rows  `json:"generated"`
	Uploads   int64 `json:"uploads"`
	Batches   int64 `json:"batches"`
	Requests  int64 `json:"requests"`
	Retries   int64 `json:"retries"`
	Throttled int64 `json:"throttled_429"`

	Applied    int64 `json:"applied"`
	Duplicates int64 `json:"duplicates"`
	Rejected   int64 `json:"rejected"`

	// Lost is generated rows minus the collector's row-count delta —
	// zero on a healthy run, regardless of retries and throttling.
	Lost       int64 `json:"lost_rows"`
	StatsDelta Rows  `json:"stats_delta"`

	RowsPerSec    float64       `json:"rows_per_sec"`
	UploadsPerSec float64       `json:"uploads_per_sec"`
	P50           time.Duration `json:"latency_p50_ns"`
	P90           time.Duration `json:"latency_p90_ns"`
	P99           time.Duration `json:"latency_p99_ns"`

	// SlowRows is per-row lineage for the slowest uploads by
	// generation→ack latency: each carries the trace ID derived from its
	// idempotency key, so a slow row in the report can be pulled up as a
	// full waterfall at the collector's /debug/traces/{id}.
	SlowRows []RowLineage `json:"slow_rows,omitempty"`
	// ThrottledTraces are server-side trace IDs returned in 429
	// responses (X-Natpeek-Trace), correlating this run's Retry-After
	// waits with the collector's throttle spans. Bounded sample.
	ThrottledTraces []string `json:"throttled_traces,omitempty"`
}

// RowLineage ties one upload's delivery history to its server-side
// trace: how long from row generation to acknowledged delivery, and
// over how many HTTP attempts.
type RowLineage struct {
	Key      string        `json:"key"`
	TraceID  string        `json:"trace_id"`
	Endpoint string        `json:"endpoint"`
	Latency  time.Duration `json:"latency_ns"`
	Attempts int           `json:"attempts"`
}

// String renders the operator summary bismark-load prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d routers, %d uploads (%d rows) in %v\n",
		r.Routers, r.Uploads, r.Generated.Total(), r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput: %.0f rows/s, %.0f uploads/s over %d requests (%d batches)\n",
		r.RowsPerSec, r.UploadsPerSec, r.Requests, r.Batches)
	fmt.Fprintf(&b, "  latency:    p50=%v p90=%v p99=%v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  delivery:   applied=%d duplicates=%d rejected=%d retries=%d throttled=%d\n",
		r.Applied, r.Duplicates, r.Rejected, r.Retries, r.Throttled)
	fmt.Fprintf(&b, "  accounting: lost rows = %d\n", r.Lost)
	for i, row := range r.SlowRows {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  slow row:   %s %s %v over %d attempt(s), trace %s\n",
			row.Endpoint, row.Key, row.Latency.Round(time.Millisecond), row.Attempts, row.TraceID)
	}
	if len(r.ThrottledTraces) > 0 {
		fmt.Fprintf(&b, "  429 traces: %s\n", strings.Join(r.ThrottledTraces, " "))
	}
	return b.String()
}

// upload is one generated payload awaiting delivery. payload always
// carries the typed rows; body is the JSON encoding, marshaled only
// when a delivery path needs it (direct POSTs, or Wire "json").
type upload struct {
	endpoint string
	key      string
	payload  wire.Payload
	body     json.RawMessage
	direct   bool
	genAt    time.Time // row generation time; lineage measures genAt→ack
}

// router extracts the router ID from the upload's key ("id:nonce:seq").
func (u upload) router() string {
	if i := strings.IndexByte(u.key, ':'); i > 0 {
		return u.key[:i]
	}
	return ""
}

type runner struct {
	cfg     Config
	httpc   *http.Client
	nonce   string
	weights []float64

	work chan upload

	requests  atomic.Int64
	retries   atomic.Int64
	throttled atomic.Int64
	batches   atomic.Int64

	applied    atomic.Int64
	duplicates atomic.Int64
	rejected   atomic.Int64

	mu              sync.Mutex
	latencies       []time.Duration
	firstErr        error
	slow            []RowLineage // sorted by Latency descending, capped
	throttledTraces []string

	hLatency *telemetry.Histogram
	mRows    *telemetry.CounterVec
}

// Run executes one load run against a live collector and returns the
// accounting report. Any router registration failure, unrecoverable
// delivery error, or context cancellation aborts the run with an error;
// retryable failures (transport errors, 5xx, 429) are retried with
// backoff until ctx is done.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Wire != "binary" && cfg.Wire != "json" {
		return nil, fmt.Errorf("loadgen: unknown wire format %q (want binary or json)", cfg.Wire)
	}
	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("loadgen: nonce: %w", err)
	}
	reg := telemetry.Default
	r := &runner{
		cfg: cfg,
		httpc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			},
		},
		nonce:   hex.EncodeToString(nb[:]),
		weights: cfg.Mix.weights(),
		work:    make(chan upload, cfg.Workers*cfg.BatchSize),
		hLatency: reg.Histogram("natpeek_loadgen_request_seconds",
			"Load-generator request latency (batches and direct uploads).", nil),
		mRows: reg.CounterVec("natpeek_loadgen_rows_total",
			"Rows generated by the load generator, per data set.", "dataset"),
	}

	before, err := r.fetchStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats before run: %w", err)
	}

	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Delivery workers: shared keep-alive pool draining the work channel.
	var workers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			r.deliver(runCtx)
		}()
	}

	// Router fleet: each router ramps in, registers, then generates its
	// cycles. Generation is cheap; delivery backpressure comes from the
	// bounded work channel.
	gen := &generator{cfg: cfg}
	var routers sync.WaitGroup
	routerErr := make(chan error, 1)
	for i := 0; i < cfg.Routers; i++ {
		routers.Add(1)
		go func(i int) {
			defer routers.Done()
			if err := r.runRouter(runCtx, gen, i); err != nil {
				select {
				case routerErr <- err:
					cancel()
				default:
				}
			}
		}(i)
	}
	routers.Wait()
	close(r.work)
	workers.Wait()

	select {
	case err := <-routerErr:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: run aborted: %w", err)
	}
	r.mu.Lock()
	firstErr := r.firstErr
	r.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}

	after, err := r.fetchStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats after run: %w", err)
	}
	return r.report(gen, before, after, time.Since(start)), nil
}

// generator owns the fleet-wide row accounting.
type generator struct {
	cfg  Config
	rows Rows

	uploads atomic.Int64

	mu sync.Mutex // guards rows
}

func (g *generator) count(rows Rows) {
	g.mu.Lock()
	g.rows.Uptime += rows.Uptime
	g.rows.Capacity += rows.Capacity
	g.rows.Counts += rows.Counts
	g.rows.Sightings += rows.Sightings
	g.rows.WiFi += rows.WiFi
	g.rows.Flows += rows.Flows
	g.rows.Throughput += rows.Throughput
	g.mu.Unlock()
}

func (g *generator) total() Rows {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rows
}

func routerID(i int) string { return fmt.Sprintf("load-%05d", i) }

// runRouter ramps in, registers, and emits the router's cycles.
func (r *runner) runRouter(ctx context.Context, gen *generator, i int) error {
	cfg := r.cfg
	if cfg.Ramp > 0 && cfg.Routers > 1 {
		delay := cfg.Ramp * time.Duration(i) / time.Duration(cfg.Routers)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil
		}
	}
	id := routerID(i)
	if !cfg.SkipRegister {
		if err := r.register(ctx, id); err != nil {
			return fmt.Errorf("loadgen: register %s: %w", id, err)
		}
	}
	stream := rng.New(cfg.Seed).ChildN("router", i)
	seq := 0
	for c := 0; c < cfg.Cycles; c++ {
		if ctx.Err() != nil {
			return nil
		}
		if cfg.Duty < 1 && !stream.Bool(cfg.Duty) {
			continue
		}
		for p := 0; p < cfg.PayloadsPerCycle; p++ {
			up, rows, err := r.payload(gen, id, i, c, seq, stream)
			if err != nil {
				return err
			}
			seq++
			gen.count(rows)
			gen.uploads.Add(1)
			select {
			case r.work <- up:
			case <-ctx.Done():
				return nil
			}
		}
		if cfg.Interval > 0 && c < cfg.Cycles-1 {
			select {
			case <-time.After(cfg.Interval):
			case <-ctx.Done():
				return nil
			}
		}
	}
	return nil
}

// payload generates one upload: endpoint chosen from the mix, rows
// shaped like the world simulator's, key prefixed with the router ID so
// replays route to the same store shard. Rows are built as a typed
// wire.Payload; the JSON encoding is derived from it only for delivery
// paths that ship JSON, so binary runs never round-trip through text.
func (r *runner) payload(gen *generator, id string, router, cycle, seq int, stream *rng.Stream) (upload, Rows, error) {
	cfg := r.cfg
	at := cfg.Start.Add(time.Duration(cycle) * time.Hour).Add(time.Duration(seq%60) * time.Minute)
	var (
		endpoint string
		p        wire.Payload
		rows     Rows
	)
	switch stream.WeightedChoice(r.weights) {
	case 0:
		endpoint = "/v1/uptime"
		p.Kind = wire.KindUptime
		p.Uptime = dataset.UptimeReport{RouterID: id, ReportedAt: at,
			Uptime: time.Duration(stream.Intn(14*24*3600)) * time.Second}
		rows.Uptime = 1
		r.mRows.With("uptime").Inc()
	case 1:
		endpoint = "/v1/capacity"
		p.Kind = wire.KindCapacity
		p.Capacity = dataset.CapacityMeasure{RouterID: id, MeasuredAt: at,
			UpBps: stream.Range(4e5, 1e7), DownBps: stream.Range(1e6, 1e8)}
		rows.Capacity = 1
		r.mRows.With("capacity").Inc()
	case 2:
		endpoint = "/v1/devices"
		n := 1 + stream.Intn(4)
		sightings := make([]dataset.DeviceSighting, n)
		for j := range sightings {
			sightings[j] = dataset.DeviceSighting{RouterID: id, At: at,
				Device: mac.FromOUI(0x001CB3, uint32(router*1000+j)),
				Kind:   dataset.ConnKind(stream.Intn(3))}
		}
		p.Kind = wire.KindDevices
		p.Count = dataset.DeviceCount{RouterID: id, At: at, Wired: stream.Intn(3), W24: stream.Intn(6), W5: stream.Intn(4)}
		p.Sightings = sightings
		rows.Counts = 1
		rows.Sightings = int64(n)
		r.mRows.With("devices").Inc()
	case 3:
		endpoint = "/v1/wifi"
		scans := make([]dataset.WiFiScan, 2)
		for j, band := range []string{"2.4GHz", "5GHz"} {
			scans[j] = dataset.WiFiScan{RouterID: id, At: at, Band: band,
				Channel: 1 + stream.Intn(11), VisibleAPs: stream.Intn(25), Clients: stream.Intn(6)}
		}
		p.Kind = wire.KindWiFi
		p.WiFi = scans
		rows.WiFi = int64(len(scans))
		r.mRows.With("wifi").Inc()
	case 4:
		endpoint = "/v1/traffic/flows"
		flows := make([]dataset.FlowRecord, cfg.FlowsPerPayload)
		for j := range flows {
			flows[j] = dataset.FlowRecord{RouterID: id,
				Device: mac.FromOUI(0x001CB3, uint32(router*1000+j)),
				Domain: fmt.Sprintf("anon-%016x", stream.Uint64()), Proto: "tcp",
				First: at, Last: at.Add(time.Duration(1+stream.Intn(300)) * time.Second),
				UpBytes: stream.Int63() % 1e6, DownBytes: stream.Int63() % 1e8,
				UpPkts: int64(stream.Intn(1e4)), DownPkts: int64(stream.Intn(1e5)),
				Conns: 1 + int64(stream.Intn(9))}
		}
		p.Kind = wire.KindFlows
		p.Flows = flows
		rows.Flows = int64(len(flows))
		r.mRows.With("flows").Inc()
	default:
		endpoint = "/v1/traffic/throughput"
		samples := make([]dataset.ThroughputSample, cfg.SamplesPerPayload)
		for j := range samples {
			samples[j] = dataset.ThroughputSample{RouterID: id,
				Minute:  at.Add(time.Duration(j) * time.Minute),
				Dir:     []string{"up", "down"}[j%2],
				PeakBps: stream.Range(1e4, 1e8), TotalBytes: stream.Int63() % 1e8}
		}
		p.Kind = wire.KindThroughput
		p.Throughput = samples
		rows.Throughput = int64(len(samples))
		r.mRows.With("throughput").Inc()
	}
	up := upload{
		endpoint: endpoint,
		key:      id + ":" + r.nonce + ":" + strconv.Itoa(seq),
		payload:  p,
		direct:   stream.Bool(cfg.DirectFraction),
		genAt:    time.Now(),
	}
	if up.direct || cfg.Wire == "json" {
		body, err := p.JSONBody()
		if err != nil {
			return upload{}, Rows{}, fmt.Errorf("loadgen: marshal %s: %w", endpoint, err)
		}
		up.body = body
	}
	return up, rows, nil
}

// deliver drains the work channel: direct uploads POST individually
// with an Idempotency-Key header; the rest group into /v1/batch POSTs.
func (r *runner) deliver(ctx context.Context) {
	batch := make([]upload, 0, r.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		r.postBatch(ctx, batch)
		batch = batch[:0]
	}
	for up := range r.work {
		if up.direct {
			r.postDirect(ctx, up)
			continue
		}
		batch = append(batch, up)
		if len(batch) >= r.cfg.BatchSize {
			flush()
		}
	}
	flush()
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
}

// retryLoop POSTs with at-least-once semantics: transport errors, 5xx,
// and 429 retry with exponential backoff (429's Retry-After is honored,
// capped at the max backoff); 4xx other than 429 is a generator bug and
// fails the run. It returns the response body for result accounting and
// the number of HTTP attempts made (for per-row lineage).
func (r *runner) retryLoop(ctx context.Context, mk func() (*http.Request, error)) ([]byte, int, bool) {
	backoff := 10 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil, attempt, false
		}
		req, err := mk()
		if err != nil {
			r.fail(err)
			return nil, attempt, false
		}
		start := time.Now()
		resp, err := r.httpc.Do(req.WithContext(ctx))
		lat := time.Since(start)
		r.requests.Add(1)
		r.hLatency.Observe(lat.Seconds())
		r.mu.Lock()
		r.latencies = append(r.latencies, lat)
		r.mu.Unlock()

		wait := backoff
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode < 300 && rerr == nil:
				return body, attempt + 1, true
			case resp.StatusCode == http.StatusTooManyRequests:
				r.throttled.Add(1)
				r.noteThrottledTrace(resp.Header.Get("X-Natpeek-Trace"))
				if ra, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && ra >= 0 {
					if d := time.Duration(ra) * time.Second; d < maxBackoff && d > wait {
						wait = d
					}
				}
			case resp.StatusCode >= 300 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests:
				r.fail(fmt.Errorf("loadgen: %s: status %d: %s", req.URL.Path, resp.StatusCode,
					strings.TrimSpace(string(body))))
				return nil, attempt + 1, false
			}
			// 5xx (and read errors): fall through to retry.
		}
		r.retries.Add(1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, attempt + 1, false
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// maxSlowRows / maxThrottledTraces bound the lineage carried in the
// report: enough to chase the worst offenders, not a per-row ledger.
const (
	maxSlowRows        = 10
	maxThrottledTraces = 8
)

// noteThrottledTrace samples server trace IDs from 429 responses.
func (r *runner) noteThrottledTrace(id string) {
	if id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.throttledTraces) >= maxThrottledTraces {
		return
	}
	for _, seen := range r.throttledTraces {
		if seen == id {
			return
		}
	}
	r.throttledTraces = append(r.throttledTraces, id)
}

// recordLineage folds acknowledged uploads into the top-N slowest set.
func (r *runner) recordLineage(ups []upload, ackAt time.Time, attempts int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, up := range ups {
		lat := ackAt.Sub(up.genAt)
		if len(r.slow) >= maxSlowRows && lat <= r.slow[len(r.slow)-1].Latency {
			continue
		}
		r.slow = append(r.slow, RowLineage{
			Key: up.key, TraceID: trace.IDFromKey(up.key),
			Endpoint: up.endpoint, Latency: lat, Attempts: attempts,
		})
		sort.Slice(r.slow, func(i, j int) bool { return r.slow[i].Latency > r.slow[j].Latency })
		if len(r.slow) > maxSlowRows {
			r.slow = r.slow[:maxSlowRows]
		}
	}
}

func (r *runner) postBatch(ctx context.Context, ups []upload) {
	now := time.Now()
	// Client-side lineage: the queued span covers generation → first
	// POST; retries re-ship the same spans and merge server-side by
	// trace ID.
	traceFor := func(up upload) *trace.Wire {
		if !trace.Enabled() {
			return nil
		}
		return &trace.Wire{
			TraceID: trace.IDFromKey(up.key),
			Router:  up.router(),
			Spans: []trace.Span{{Name: "loadgen.queued", Start: up.genAt, End: now,
				Status: trace.StatusOK}},
		}
	}
	var (
		body        []byte
		contentType string
	)
	if r.cfg.Wire == "binary" {
		items := make([]wire.Item, len(ups))
		for i, up := range ups {
			items[i] = wire.Item{Endpoint: up.endpoint, Key: up.key,
				Payload: up.payload, Trace: traceFor(up)}
		}
		body = wire.AppendBatch(nil, items)
		contentType = wire.ContentTypeBinary
	} else {
		items := make([]collector.BatchItem, len(ups))
		for i, up := range ups {
			items[i] = collector.BatchItem{Endpoint: up.endpoint, Key: up.key,
				Body: up.body, Trace: traceFor(up)}
		}
		var err error
		if body, err = json.Marshal(items); err != nil {
			r.fail(err)
			return
		}
		contentType = "application/json"
	}
	encoding := ""
	if r.cfg.Gzip {
		var zb bytes.Buffer
		zw := gzip.NewWriter(&zb)
		if _, err := zw.Write(body); err != nil {
			r.fail(err)
			return
		}
		if err := zw.Close(); err != nil {
			r.fail(err)
			return
		}
		body = zb.Bytes()
		encoding = "gzip"
	}
	resBody, attempts, ok := r.retryLoop(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, r.cfg.BaseURL+"/v1/batch", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", contentType)
			if encoding != "" {
				req.Header.Set("Content-Encoding", encoding)
			}
			req.Header.Set("Traceparent", trace.FormatTraceparent(trace.IDFromKey(ups[0].key)))
		}
		return req, err
	})
	if !ok {
		return
	}
	r.batches.Add(1)
	r.recordLineage(ups, time.Now(), attempts)
	var res collector.BatchResult
	if err := json.Unmarshal(resBody, &res); err != nil {
		r.fail(fmt.Errorf("loadgen: batch result: %w", err))
		return
	}
	r.applied.Add(int64(res.Applied))
	r.duplicates.Add(int64(res.Duplicates))
	r.rejected.Add(int64(res.Rejected))
}

func (r *runner) postDirect(ctx context.Context, up upload) {
	if _, attempts, ok := r.retryLoop(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, r.cfg.BaseURL+up.endpoint, bytes.NewReader(up.body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Idempotency-Key", up.key)
			req.Header.Set("Traceparent", trace.FormatTraceparent(trace.IDFromKey(up.key)))
		}
		return req, err
	}); ok {
		r.applied.Add(1)
		r.recordLineage([]upload{up}, time.Now(), attempts)
	}
}

func (r *runner) register(ctx context.Context, id string) error {
	body, err := json.Marshal(struct {
		RouterID string `json:"router_id"`
		Country  string `json:"country"`
	}{RouterID: id, Country: "US"})
	if err != nil {
		return err
	}
	if _, _, ok := r.retryLoop(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, r.cfg.BaseURL+"/v1/register", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, err
	}); !ok {
		r.mu.Lock()
		err := r.firstErr
		r.mu.Unlock()
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
	return nil
}

func (r *runner) fetchStats(ctx context.Context) (collector.Stats, error) {
	var st collector.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := r.httpc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (r *runner) report(gen *generator, before, after collector.Stats, dur time.Duration) *Report {
	rows := gen.total()
	delta := Rows{
		Uptime:     int64(after.Uptime - before.Uptime),
		Capacity:   int64(after.Capacity - before.Capacity),
		Counts:     int64(after.Counts - before.Counts),
		Sightings:  int64(after.Sightings - before.Sightings),
		WiFi:       int64(after.WiFi - before.WiFi),
		Flows:      int64(after.Flows - before.Flows),
		Throughput: int64(after.Throughput - before.Throughput),
	}
	rep := &Report{
		Cfg:        r.cfg,
		Routers:    r.cfg.Routers,
		Duration:   dur,
		Generated:  rows,
		Uploads:    gen.uploads.Load(),
		Batches:    r.batches.Load(),
		Requests:   r.requests.Load(),
		Retries:    r.retries.Load(),
		Throttled:  r.throttled.Load(),
		Applied:    r.applied.Load(),
		Duplicates: r.duplicates.Load(),
		Rejected:   r.rejected.Load(),
		Lost:       rows.Total() - delta.Total(),
		StatsDelta: delta,
	}
	if secs := dur.Seconds(); secs > 0 {
		rep.RowsPerSec = float64(rows.Total()) / secs
		rep.UploadsPerSec = float64(rep.Uploads) / secs
	}
	r.mu.Lock()
	lats := r.latencies
	rep.SlowRows = r.slow
	rep.ThrottledTraces = r.throttledTraces
	r.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		rep.P50, rep.P90, rep.P99 = q(0.50), q(0.90), q(0.99)
	}
	return rep
}
