package loadgen

import (
	"context"
	"testing"
	"time"

	"natpeek/internal/collector"
)

// BenchmarkLoadgenEndToEnd measures fleet-scale ingest over real
// sockets: synthetic routers upload through keep-alive HTTP into a live
// collector, and the run's strict accounting must come back clean. The
// BENCH_*.json trajectory tracks rows/s (end-to-end ingest throughput)
// and p99 request latency.
func BenchmarkLoadgenEndToEnd(b *testing.B) {
	srv, err := collector.NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	var rows, uploads int64
	var p99 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), Config{
			BaseURL:          "http://" + srv.HTTPAddr(),
			Routers:          50,
			Cycles:           2,
			PayloadsPerCycle: 4,
			BatchSize:        32,
			Workers:          8,
			Seed:             uint64(i + 1),
			SkipRegister:     i > 0, // the fleet registers once
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Lost != 0 || rep.Rejected != 0 {
			b.Fatalf("benchmark run lost rows: %+v", rep)
		}
		rows += rep.Generated.Total()
		uploads += rep.Uploads
		p99 = rep.P99
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(rows)/secs, "rows/s")
	b.ReportMetric(float64(uploads)/secs, "uploads/s")
	b.ReportMetric(float64(p99.Microseconds()), "p99-µs")
}
