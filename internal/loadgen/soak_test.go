package loadgen

import (
	"context"
	"testing"
	"time"

	"natpeek/internal/collector"
)

// soakConfig is the deterministic short soak: 200 routers, a compressed
// ramp, several cycles back-to-back.
func soakConfig(baseURL string) Config {
	return Config{
		BaseURL:          baseURL,
		Routers:          200,
		Ramp:             200 * time.Millisecond,
		Cycles:           3,
		PayloadsPerCycle: 3,
		Duty:             0.9, // some homes skip cycles, as deployed fleets do
		BatchSize:        32,
		Workers:          8,
		Seed:             42,
	}
}

func startCollector(t *testing.T) (*collector.Server, string) {
	t.Helper()
	srv, err := collector.NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.HTTPAddr()
}

// checkRun asserts the accounting invariants every healthy soak must
// hold: zero lost rows (stats delta == generated), nothing rejected,
// and the merged store actually contains what stats claims.
func checkRun(t *testing.T, srv *collector.Server, rep *Report) {
	t.Helper()
	if rep.Lost != 0 {
		t.Fatalf("lost %d rows (generated %d, ingested %d)",
			rep.Lost, rep.Generated.Total(), rep.StatsDelta.Total())
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d uploads rejected — generator and server disagree on payload shape", rep.Rejected)
	}
	if rep.Uploads == 0 || rep.Generated.Total() == 0 {
		t.Fatal("soak generated no traffic")
	}
	st := srv.Store()
	got := int64(len(st.Uptime) + len(st.Capacity) + len(st.Counts) + len(st.Sightings) +
		len(st.WiFi) + len(st.Flows) + len(st.Throughput))
	if got != rep.Generated.Total() {
		t.Fatalf("merged store has %d rows, generated %d", got, rep.Generated.Total())
	}
	if rc := srv.Sharded().RowCounts(); rc.Routers != rep.Routers {
		t.Fatalf("registered routers = %d, want %d", rc.Routers, rep.Routers)
	}
}

// TestSoakZeroRowLoss drives ~200 synthetic routers against a live
// in-process collector as fast as the loop allows and asserts strict
// row conservation via idempotency-key accounting.
func TestSoakZeroRowLoss(t *testing.T) {
	srv, baseURL := startCollector(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	rep, err := Run(ctx, soakConfig(baseURL))
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, srv, rep)
}

// TestSoakZeroRowLossUnderFaults is the lossy case: 30% of uploads fail
// (half rejected before apply, half applied with the ack dropped — PR
// 2's fault-injection knobs). At-least-once delivery plus server dedupe
// must still conserve every row, and the run must visibly have retried.
func TestSoakZeroRowLossUnderFaults(t *testing.T) {
	srv, baseURL := startCollector(t)
	srv.SetFaultInjection(0.3, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cfg := soakConfig(baseURL)
	cfg.Routers = 100 // faults slow convergence; keep the run short
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, srv, rep)
	if rep.Retries == 0 {
		t.Error("fault injection at 30% produced zero retries")
	}
	if rep.Duplicates == 0 {
		t.Error("drop-ack faults produced zero duplicate acks — dedupe path untested")
	}
}

// TestSoakZeroRowLossUnderThrottle squeezes the same fleet through a
// tiny admission window: most uploads bounce off 429 at least once, and
// Retry-After-honoring retries must still conserve every row.
func TestSoakZeroRowLossUnderThrottle(t *testing.T) {
	srv, baseURL := startCollector(t)
	srv.SetMaxInflight(2)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cfg := soakConfig(baseURL)
	cfg.Routers = 50
	cfg.Workers = 16 // deliberately exceed the admission window
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, srv, rep)
	t.Logf("throttled %d times across %d requests", rep.Throttled, rep.Requests)
}

// TestRunDeterministicRows pins generation determinism: two runs with
// the same seed generate identical row counts (the keys differ by
// nonce, so both runs' rows land).
func TestRunDeterministicRows(t *testing.T) {
	srv, baseURL := startCollector(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cfg := soakConfig(baseURL)
	cfg.Routers = 20
	rep1, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SkipRegister = true // fleet already registered
	rep2, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Lost != 0 {
		t.Fatalf("second run lost %d rows", rep2.Lost)
	}
	if rep1.Generated != rep2.Generated {
		t.Fatalf("same seed, different rows:\n run1 %+v\n run2 %+v", rep1.Generated, rep2.Generated)
	}
	_ = srv
}

// TestSoakWireModes runs the conservation soak once per explicit wire
// configuration: forced JSON (the legacy server path must stay covered
// now that the default is binary) and gzip-compressed binary. Every
// mode must conserve rows exactly.
func TestSoakWireModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		wire string
		gzip bool
	}{
		{"json", "json", false},
		{"binary-gzip", "binary", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, baseURL := startCollector(t)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			cfg := soakConfig(baseURL)
			cfg.Routers = 50
			cfg.Wire = tc.wire
			cfg.Gzip = tc.gzip
			rep, err := Run(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, srv, rep)
		})
	}
}

// TestRunRejectsUnknownWire pins the config validation.
func TestRunRejectsUnknownWire(t *testing.T) {
	_, baseURL := startCollector(t)
	cfg := soakConfig(baseURL)
	cfg.Wire = "msgpack"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("unknown wire format accepted")
	}
}
