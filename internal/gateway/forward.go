package gateway

import (
	"errors"
	"time"

	"natpeek/internal/nat"
	"natpeek/internal/packet"
)

// The forwarding path is the router's data plane: LAN frames are captured
// (while device MACs and private addresses are still visible — the
// "peeking behind the NAT" vantage point), then NAT-translated and put on
// the access link; WAN frames reverse the trip. The measurement pipeline
// taps the LAN side, which is exactly why the study could attribute
// traffic per device when an outside observer could not.

// ErrNoNAT reports a forwarding call on an Env without a NAT table.
var ErrNoNAT = errors.New("gateway: env has no NAT table")

// ErrLinkDown reports a drop because the access link rejected the frame.
var ErrLinkDown = errors.New("gateway: access link dropped frame")

// ForwardUp processes one LAN→WAN frame: passive capture first (pre-NAT),
// then source translation, then transmission on the uplink. deliver (may
// be nil) receives the translated frame when it reaches the WAN side.
func (a *Agent) ForwardUp(raw []byte, now time.Time, deliver func(wireFrame []byte, at time.Time)) error {
	if !a.running {
		return errors.New("gateway: powered off")
	}
	a.HandleFrame(raw, true, now)
	if a.env.NAT == nil {
		return ErrNoNAT
	}
	// Translate a copy: the caller's buffer stays LAN-addressed.
	wire := append([]byte(nil), raw...)
	if _, err := a.env.NAT.TranslateOut(wire, now); err != nil {
		return err
	}
	if a.env.Link == nil {
		if deliver != nil {
			deliver(wire, now)
		}
		return nil
	}
	ok := a.env.Link.Up.Send(len(wire), func(at time.Time) {
		if deliver != nil {
			deliver(wire, at)
		}
	})
	if !ok {
		return ErrLinkDown
	}
	return nil
}

// DeliverDown processes one WAN→LAN frame: destination translation back
// to the device, then passive capture (post-NAT, so LAN addresses are
// visible again), then delivery toward the device. Unsolicited frames
// with no mapping are dropped, as a NAT does.
func (a *Agent) DeliverDown(raw []byte, now time.Time, deliver func(lanFrame []byte, at time.Time)) error {
	if !a.running {
		return errors.New("gateway: powered off")
	}
	if a.env.NAT == nil {
		return ErrNoNAT
	}
	lan := append([]byte(nil), raw...)
	if _, err := a.env.NAT.TranslateIn(lan, now); err != nil {
		return err
	}
	a.HandleFrame(lan, false, now)
	if a.env.Link == nil {
		if deliver != nil {
			deliver(lan, now)
		}
		return nil
	}
	ok := a.env.Link.Down.Send(len(lan), func(at time.Time) {
		if deliver != nil {
			deliver(lan, at)
		}
	})
	if !ok {
		return ErrLinkDown
	}
	return nil
}

// AttributeExternal answers the NAT-opacity question from the inside:
// which LAN endpoint owns traffic an outside observer saw on this
// external port? (§1: without the in-home vantage point, "traffic coming
// from any device in a home network appears to all be coming from a
// single device".)
func (a *Agent) AttributeExternal(proto string, externalPort uint16) (nat.Endpoint, error) {
	if a.env.NAT == nil {
		return nat.Endpoint{}, ErrNoNAT
	}
	p := packet.ProtoTCP
	if proto == "udp" {
		p = packet.ProtoUDP
	}
	return a.env.NAT.Attribute(p, externalPort)
}
