package gateway

import (
	"testing"
	"time"

	"natpeek/internal/mac"
)

// Regression tests for two measurement-path bugs: flows exported
// mid-life with partial totals (the flushTraffic export watermark), and
// the WiFi scan throttle sharing one skip counter across both radios.

// TestFlowExportWaitsForFinalTotals: a flow that is still alive at
// report time must NOT be exported with partial counts; it is exported
// exactly once, after it idles out, with its final totals. The old
// index-watermark export shipped the live flow at the first flush (5
// packets) and never shipped the complete record.
func TestFlowExportWaitsForFinalTotals(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)

	makeFlowFrames(f, 5)
	f.agent.flushTraffic(f.clk.Now())
	if n := len(f.sink.flows); n != 0 {
		t.Fatalf("live flow exported mid-life with partial totals: %+v", f.sink.flows)
	}

	// The same flow keeps talking after the report.
	makeFlowFrames(f, 5)

	// Idle it past the 5-minute flow timeout, then report again.
	f.clk.Advance(10 * time.Minute)
	f.agent.flushTraffic(f.clk.Now())
	if n := len(f.sink.flows); n != 1 {
		t.Fatalf("finished flow exported %d times, want 1", n)
	}
	if got := f.sink.flows[0].UpPkts; got != 10 {
		t.Fatalf("exported UpPkts = %d, want 10 (final totals, not a mid-life snapshot)", got)
	}

	// And never again.
	f.clk.Advance(10 * time.Minute)
	f.agent.flushTraffic(f.clk.Now())
	if n := len(f.sink.flows); n != 1 {
		t.Fatalf("finished flow re-exported: %d records", n)
	}
}

// TestPowerOffExportsLiveFlows: power-off finishes every live flow so
// its totals are not lost with the process (the firmware persisted its
// buffers to flash for the same reason).
func TestPowerOffExportsLiveFlows(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 5)
	f.agent.PowerOff(f.clk.Now())
	if n := len(f.sink.flows); n != 1 {
		t.Fatalf("flows exported at power-off = %d, want 1", n)
	}
	if got := f.sink.flows[0].UpPkts; got != 5 {
		t.Fatalf("power-off export UpPkts = %d, want 5", got)
	}
}

// TestScanThrottleIndependentPerRadio: with clients associated on BOTH
// bands and an even throttle, each radio must still scan every
// ScanThrottle-th pass. The old shared skip counter alternated between
// the radios, so one band scanned every pass and the other never did.
func TestScanThrottleIndependentPerRadio(t *testing.T) {
	f := newFixture(t, false)
	f.agent.cfg.ScanThrottle = 2
	f.env.Radio24.Associate(mac.MustParse("a4:b1:97:00:00:21"))
	f.env.Radio5.Associate(mac.MustParse("00:24:8c:00:00:22"))

	const passes = 8
	for i := 0; i < passes; i++ {
		f.agent.scan(f.clk.Now())
	}
	perBand := make(map[string]int)
	for _, s := range f.sink.scans {
		perBand[s.Band]++
	}
	want := passes / 2
	if perBand["2.4GHz"] != want || perBand["5GHz"] != want {
		t.Fatalf("scans per band = %v, want %d each (a shared throttle counter starves one radio)",
			perBand, want)
	}
}

// TestScanThrottleOnlyAppliesToBusyRadio: a radio without clients is
// never throttled, regardless of what the other radio is doing.
func TestScanThrottleOnlyAppliesToBusyRadio(t *testing.T) {
	f := newFixture(t, false)
	f.agent.cfg.ScanThrottle = 3
	f.env.Radio24.Associate(mac.MustParse("a4:b1:97:00:00:23")) // only 2.4 GHz is busy

	const passes = 6
	for i := 0; i < passes; i++ {
		f.agent.scan(f.clk.Now())
	}
	perBand := make(map[string]int)
	for _, s := range f.sink.scans {
		perBand[s.Band]++
	}
	if perBand["5GHz"] != passes {
		t.Fatalf("idle 5 GHz radio scanned %d of %d passes, want every pass", perBand["5GHz"], passes)
	}
	if perBand["2.4GHz"] != passes/3 {
		t.Fatalf("busy 2.4 GHz radio scanned %d of %d passes, want %d", perBand["2.4GHz"], passes, passes/3)
	}
}
