package gateway

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/mac"
	"natpeek/internal/packet"
)

// TestThroughputMinuteExportedOnce is the regression for the partial-
// minute double export: a periodic traffic flush that lands mid-minute
// used to drain the in-progress minute's seconds, so traffic later in
// the same minute produced a second ThroughputSample for the same
// (router, minute, direction) — splitting the §6.2 per-minute rows and
// breaking the dedupe key the ingest invariants rely on. A flush may
// only export minutes that are complete at flush time; the rest stays
// buffered for the next flush (or power-off).
func TestThroughputMinuteExportedOnce(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)

	devHW := mac.MustParse("00:1c:b3:aa:bb:cc")
	bld := packet.NewBuilder(devHW, mac.MustParse("00:18:f8:01:02:03"))
	frame := bld.UDPv4(netip.MustParseAddr("192.168.1.23"), netip.MustParseAddr("203.0.113.7"),
		40000, 443, 64, make([]byte, 400))

	at := t0.Add(10 * time.Hour) // 10:00:00, a minute boundary
	f.agent.HandleFrame(frame, true, at)
	f.agent.HandleFrame(frame, true, at.Add(10*time.Second))
	// Periodic flush fires mid-minute (the report task is jittered, so
	// in production it almost always does).
	f.agent.flushTraffic(at.Add(30 * time.Second))
	f.agent.HandleFrame(frame, true, at.Add(50*time.Second))
	f.agent.flushTraffic(at.Add(90 * time.Second))
	f.agent.PowerOff(at.Add(2 * time.Minute))

	seen := make(map[string]int64)
	var total int64
	for _, s := range f.sink.samples {
		key := s.Minute.UTC().String() + "/" + s.Dir
		if _, dup := seen[key]; dup {
			t.Errorf("duplicate throughput row for %s (bytes %d and %d)", key, seen[key], s.TotalBytes)
		}
		seen[key] = s.TotalBytes
		if !s.Minute.Equal(s.Minute.Truncate(time.Minute)) {
			t.Errorf("sample minute %v not minute-aligned", s.Minute)
		}
		total += s.TotalBytes
	}
	if want := int64(3 * len(frame)); total != want {
		t.Errorf("total exported bytes = %d, want %d", total, want)
	}
	if got, want := seen[at.UTC().String()+"/up"], int64(3*len(frame)); got != want {
		t.Errorf("minute 10:00 row = %d bytes, want %d (whole minute in one row)", got, want)
	}
}

// TestThroughputCompleteMinutesExportedPromptly pins the fix's other
// half: a flush must still export every minute that IS complete, and a
// power-off exports everything including the in-progress minute.
func TestThroughputCompleteMinutesExportedPromptly(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)

	bld := packet.NewBuilder(mac.MustParse("00:1c:b3:aa:bb:cc"), mac.MustParse("00:18:f8:01:02:03"))
	frame := bld.UDPv4(netip.MustParseAddr("192.168.1.23"), netip.MustParseAddr("203.0.113.7"),
		40001, 443, 64, make([]byte, 200))

	at := t0.Add(11 * time.Hour)
	f.agent.HandleFrame(frame, true, at)                    // minute 0, complete at the flush below
	f.agent.HandleFrame(frame, true, at.Add(2*time.Minute)) // minute 2, in progress at the flush
	f.agent.flushTraffic(at.Add(2*time.Minute + 30*time.Second))
	if n := len(f.sink.samples); n != 1 {
		t.Fatalf("after mid-minute flush: %d samples, want 1 (only the complete minute)", n)
	}
	if !f.sink.samples[0].Minute.Equal(at) {
		t.Fatalf("flushed minute %v, want %v", f.sink.samples[0].Minute, at)
	}
	f.agent.PowerOff(at.Add(2*time.Minute + 40*time.Second))
	if n := len(f.sink.samples); n != 2 {
		t.Fatalf("after power-off: %d samples, want 2 (in-progress minute flushed)", n)
	}
}
