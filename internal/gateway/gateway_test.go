package gateway

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/capmgmt"
	"natpeek/internal/clock"
	"natpeek/internal/dataset"
	"natpeek/internal/dhcp"
	"natpeek/internal/eventsim"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/rng"
	"natpeek/internal/wifi"
)

var t0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

// memSink collects everything in memory.
type memSink struct {
	beats      []time.Time
	uptimes    []dataset.UptimeReport
	capacities []dataset.CapacityMeasure
	counts     []dataset.DeviceCount
	sightings  []dataset.DeviceSighting
	scans      []dataset.WiFiScan
	flows      []dataset.FlowRecord
	samples    []dataset.ThroughputSample
}

func (s *memSink) Heartbeat(id string, at time.Time)         { s.beats = append(s.beats, at) }
func (s *memSink) UptimeReport(r dataset.UptimeReport)       { s.uptimes = append(s.uptimes, r) }
func (s *memSink) CapacityMeasure(c dataset.CapacityMeasure) { s.capacities = append(s.capacities, c) }
func (s *memSink) DeviceCensus(c dataset.DeviceCount, sg []dataset.DeviceSighting) {
	s.counts = append(s.counts, c)
	s.sightings = append(s.sightings, sg...)
}
func (s *memSink) WiFiScan(scans []dataset.WiFiScan)   { s.scans = append(s.scans, scans...) }
func (s *memSink) TrafficFlows(f []dataset.FlowRecord) { s.flows = append(s.flows, f...) }
func (s *memSink) TrafficThroughput(ts []dataset.ThroughputSample) {
	s.samples = append(s.samples, ts...)
}

type fixture struct {
	clk   *clock.Sim
	sched *eventsim.Scheduler
	sink  *memSink
	env   *Env
	agent *Agent
}

func newFixture(t *testing.T, consent bool) *fixture {
	t.Helper()
	clk := clock.NewSim(t0)
	sched := eventsim.New(clk, rng.New(1))
	envRadio := wifi.NewEnvironment()
	for i := 0; i < 17; i++ {
		envRadio.AddAP(wifi.AP{BSSID: mac.FromOUI(0x0018F8, uint32(i)), Band: wifi.Band24, Channel: 11, RSSI: -60})
	}
	env := &Env{
		Link: linksim.NewLink(clk, rng.New(2),
			linksim.Config{RateBps: 2e6, BufferBytes: 1 << 20},
			linksim.Config{RateBps: 16e6, BufferBytes: 1 << 20}),
		Radio24: wifi.NewRadio(wifi.Band24, envRadio, rng.New(3)),
		Radio5:  wifi.NewRadio(wifi.Band5, envRadio, rng.New(4)),
		DHCP:    dhcp.NewServer(netip.MustParsePrefix("192.168.1.0/24"), 0),
	}
	sink := &memSink{}
	agent := New(Config{
		ID: "gw-test", LANPrefix: netip.MustParsePrefix("192.168.1.0/24"),
		AnonKey: []byte("key"), TrafficConsent: consent,
	}, sink, env)
	return &fixture{clk, sched, sink, env, agent}
}

func TestHeartbeatCadence(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(time.Hour)
	// ~60 beats in an hour (jitter keeps it 59–60).
	if n := len(f.sink.beats); n < 58 || n > 61 {
		t.Fatalf("beats in 1h = %d", n)
	}
}

func TestHeartbeatsStopDuringOutage(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(10 * time.Minute)
	before := len(f.sink.beats)
	f.env.Link.SetOutage(true)
	f.clk.Advance(30 * time.Minute)
	if len(f.sink.beats) != before {
		t.Fatal("heartbeats escaped during outage")
	}
	f.env.Link.SetOutage(false)
	f.clk.Advance(10 * time.Minute)
	if len(f.sink.beats) <= before {
		t.Fatal("heartbeats did not resume")
	}
}

func TestPowerOffCancelsEverything(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(5 * time.Minute)
	f.agent.PowerOff(f.clk.Now())
	n := len(f.sink.beats)
	f.clk.Advance(time.Hour)
	if len(f.sink.beats) != n {
		t.Fatal("beats after power-off")
	}
	if f.agent.Running() {
		t.Fatal("still running")
	}
}

func TestRebootResetsUptime(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(13 * time.Hour) // one report at ~12h
	if len(f.sink.uptimes) == 0 {
		t.Fatal("no uptime report")
	}
	first := f.sink.uptimes[0]
	if first.Uptime < 11*time.Hour || first.Uptime > 13*time.Hour {
		t.Fatalf("uptime = %v", first.Uptime)
	}
	f.agent.PowerOff(f.clk.Now())
	f.clk.Advance(time.Hour)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(13 * time.Hour)
	last := f.sink.uptimes[len(f.sink.uptimes)-1]
	if last.Uptime > 13*time.Hour {
		t.Fatalf("uptime not reset by reboot: %v", last.Uptime)
	}
}

func TestCapacityProbeRuns(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(13 * time.Hour)
	if len(f.sink.capacities) == 0 {
		t.Fatal("no capacity measurement")
	}
	c := f.sink.capacities[0]
	if c.UpBps < 1.7e6 || c.UpBps > 2.3e6 {
		t.Fatalf("up estimate = %.0f, link is 2 Mbps", c.UpBps)
	}
	if c.DownBps < 14e6 || c.DownBps > 18e6 {
		t.Fatalf("down estimate = %.0f, link is 16 Mbps", c.DownBps)
	}
}

func TestCensusCountsAllKinds(t *testing.T) {
	f := newFixture(t, false)
	devWired := mac.MustParse("00:11:9b:00:00:01")
	dev24 := mac.MustParse("a4:b1:97:00:00:02")
	dev5 := mac.MustParse("00:24:8c:00:00:03")
	f.env.AttachWired(devWired)
	f.env.Radio24.Associate(dev24)
	f.env.Radio5.Associate(dev5)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(90 * time.Minute)
	if len(f.sink.counts) == 0 {
		t.Fatal("no census")
	}
	c := f.sink.counts[0]
	if c.Wired != 1 || c.W24 != 1 || c.W5 != 1 {
		t.Fatalf("census %+v", c)
	}
	if len(f.sink.sightings) < 3 {
		t.Fatalf("sightings = %d", len(f.sink.sightings))
	}
	for _, s := range f.sink.sightings {
		if s.Device == devWired || s.Device == dev24 || s.Device == dev5 {
			t.Fatal("sighting leaked a raw MAC")
		}
	}
}

func TestScanSeesNeighborhood(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	f.clk.Advance(time.Hour)
	if len(f.sink.scans) == 0 {
		t.Fatal("no scans")
	}
	saw24 := false
	for _, s := range f.sink.scans {
		if s.Band == "2.4GHz" {
			saw24 = true
			if s.VisibleAPs != 17 {
				t.Fatalf("visible APs = %d, want 17", s.VisibleAPs)
			}
			if s.Channel != 11 {
				t.Fatalf("scan channel = %d", s.Channel)
			}
		}
	}
	if !saw24 {
		t.Fatal("no 2.4 GHz scan")
	}
}

func TestScanThrottledWithClients(t *testing.T) {
	free := newFixture(t, false)
	free.agent.PowerOn(free.sched)
	free.clk.Advance(3 * time.Hour)
	freeScans := 0
	for _, s := range free.sink.scans {
		if s.Band == "2.4GHz" {
			freeScans++
		}
	}

	busy := newFixture(t, false)
	busy.env.Radio24.Associate(mac.MustParse("a4:b1:97:00:00:09"))
	busy.agent.PowerOn(busy.sched)
	busy.clk.Advance(3 * time.Hour)
	busyScans := 0
	for _, s := range busy.sink.scans {
		if s.Band == "2.4GHz" {
			busyScans++
		}
	}
	if busyScans*2 >= freeScans {
		t.Fatalf("throttling ineffective: %d busy vs %d free", busyScans, freeScans)
	}
}

func makeFlowFrames(f *fixture, n int) {
	devIP := netip.MustParseAddr("192.168.1.10")
	devHW := mac.MustParse("a4:b1:97:00:00:0a")
	gwHW := mac.MustParse("20:4e:7f:00:00:01")
	remote := netip.MustParseAddr("203.0.113.80")
	bld := packet.NewBuilder(devHW, gwHW)
	for i := 0; i < n; i++ {
		raw := bld.TCPv4(devIP, remote, packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagACK}, 64, make([]byte, 1000))
		f.agent.HandleFrame(raw, true, f.clk.Now().Add(time.Duration(i)*time.Second))
	}
}

func TestTrafficExportRequiresConsent(t *testing.T) {
	f := newFixture(t, false)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 10)
	f.clk.Advance(13 * time.Hour)
	if len(f.sink.flows) != 0 || len(f.sink.samples) != 0 {
		t.Fatal("traffic exported without consent")
	}
}

func TestTrafficExportWithConsent(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 10)
	f.clk.Advance(13 * time.Hour)
	if len(f.sink.flows) == 0 {
		t.Fatal("no flows exported")
	}
	fl := f.sink.flows[0]
	if fl.RouterID != "gw-test" || fl.UpPkts != 10 {
		t.Fatalf("flow %+v", fl)
	}
	if len(f.sink.samples) == 0 {
		t.Fatal("no throughput samples")
	}
	// 10 KB-ish over 10 s window → peak ≈ 1054*8 bps.
	s := f.sink.samples[0]
	if s.Dir != "up" || s.PeakBps < 8000 {
		t.Fatalf("sample %+v", s)
	}
}

func TestFlowsNotDuplicatedAcrossFlushes(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 5)
	f.clk.Advance(13 * time.Hour)
	n := len(f.sink.flows)
	f.clk.Advance(12 * time.Hour)
	if len(f.sink.flows) != n {
		t.Fatalf("flows duplicated: %d -> %d", n, len(f.sink.flows))
	}
}

func TestThroughputNotDuplicated(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 5)
	f.clk.Advance(13 * time.Hour)
	n := len(f.sink.samples)
	f.clk.Advance(12 * time.Hour)
	if len(f.sink.samples) != n {
		t.Fatal("throughput samples duplicated")
	}
}

func TestFramesIgnoredWhilePoweredOff(t *testing.T) {
	f := newFixture(t, true)
	makeFlowFrames(f, 5) // not powered on
	f.agent.PowerOn(f.sched)
	f.clk.Advance(13 * time.Hour)
	if len(f.sink.flows) != 0 {
		t.Fatal("frames processed while off")
	}
}

func TestHeartbeatCadenceDefaultIsMinute(t *testing.T) {
	var c Config
	c.fill()
	if c.HeartbeatEvery != time.Minute || c.ReportEvery != 12*time.Hour ||
		c.CensusEvery != time.Hour || c.ScanEvery != 10*time.Minute {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestCapManagerIntegration(t *testing.T) {
	f := newFixture(t, true)
	f.agent.cfg.Plan = &capmgmt.Plan{MonthlyCapBytes: 20000, BillingDay: 1}
	f.agent.PowerOn(f.sched)
	if f.agent.CapManager() == nil {
		t.Fatal("cap manager not initialized")
	}
	makeFlowFrames(f, 30) // ~32 KB > cap
	mgr := f.agent.CapManager()
	if mgr.Used() == 0 {
		t.Fatal("frames not charged")
	}
	if !mgr.OverCap() {
		t.Fatalf("used %d of 20000, expected over cap", mgr.Used())
	}
	alerts := f.agent.CapAlerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts fired")
	}
	if len(f.agent.CapAlerts()) != 0 {
		t.Fatal("alerts not drained")
	}
	// Charged to the anonymized device, not the raw MAC.
	by := mgr.ByDevice()
	if len(by) != 1 {
		t.Fatalf("devices %v", by)
	}
	raw := mac.MustParse("a4:b1:97:00:00:0a")
	if by[0].Device == raw {
		t.Fatal("raw MAC charged")
	}
	if by[0].Device.OUI() != raw.OUI() {
		t.Fatal("OUI lost")
	}
}

func TestNoPlanNoCapManager(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	makeFlowFrames(f, 5)
	if f.agent.CapManager() != nil || len(f.agent.CapAlerts()) != 0 {
		t.Fatal("cap manager active without a plan")
	}
}
