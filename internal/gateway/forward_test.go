package gateway

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/mac"
	"natpeek/internal/nat"
	"natpeek/internal/packet"
)

// forwardFixture adds a NAT to the standard fixture.
func forwardFixture(t *testing.T) *fixture {
	f := newFixture(t, true)
	f.env.NAT = nat.New(nat.Config{WANAddr: netip.MustParseAddr("203.0.113.5")})
	f.agent.PowerOn(f.sched)
	return f
}

var (
	fwdDev    = netip.MustParseAddr("192.168.1.10")
	fwdDevHW  = "a4:b1:97:00:00:0a"
	fwdRemote = netip.MustParseAddr("173.194.43.36")
)

func lanFrame(f *fixture, sport uint16, n int) []byte {
	return packet.NewBuilder(mac.MustParse(fwdDevHW), mac.MustParse("20:4e:7f:00:00:01")).TCPv4(
		fwdDev, fwdRemote,
		packet.TCP{SrcPort: sport, DstPort: 443, Flags: packet.FlagACK}, 64, make([]byte, n))
}

func TestForwardUpTranslatesAndCaptures(t *testing.T) {
	f := forwardFixture(t)
	var wire []byte
	err := f.agent.ForwardUp(lanFrame(f, 5000, 100), f.clk.Now(), func(b []byte, at time.Time) {
		wire = b
	})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	if wire == nil {
		t.Fatal("frame never reached the WAN side")
	}
	p, err := packet.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcIP().String() != "203.0.113.5" {
		t.Fatalf("wire src = %v, want WAN address", p.SrcIP())
	}
	// The LAN-side capture recorded the device, not the WAN address.
	devs := f.agent.Monitor().Devices()
	if len(devs) != 1 {
		t.Fatalf("captured devices = %d", len(devs))
	}
}

func TestRoundTripThroughNAT(t *testing.T) {
	f := forwardFixture(t)
	var wire []byte
	if err := f.agent.ForwardUp(lanFrame(f, 5000, 10), f.clk.Now(), func(b []byte, _ time.Time) {
		wire = b
	}); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	p, _ := packet.Decode(wire)
	extPort := p.TCP.SrcPort

	// Build the remote's reply to the WAN endpoint.
	reply := packet.NewBuilder(mac.MustParse("20:4e:7f:00:00:01"), mac.MustParse(fwdDevHW)).TCPv4(
		fwdRemote, netip.MustParseAddr("203.0.113.5"),
		packet.TCP{SrcPort: 443, DstPort: extPort, Flags: packet.FlagACK}, 60, make([]byte, 500))
	var lan []byte
	if err := f.agent.DeliverDown(reply, f.clk.Now(), func(b []byte, _ time.Time) {
		lan = b
	}); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	pl, err := packet.Decode(lan)
	if err != nil {
		t.Fatal(err)
	}
	if pl.DstIP() != fwdDev {
		t.Fatalf("reply dst = %v, want device", pl.DstIP())
	}
	if _, dp := pl.Ports(); dp != 5000 {
		t.Fatalf("reply dport = %d", dp)
	}
	// Both directions landed in one captured flow.
	flows := f.agent.Monitor().Flows()
	if len(flows) != 1 || flows[0].UpPkts != 1 || flows[0].DownPkts != 1 {
		t.Fatalf("flows %+v", flows)
	}
}

func TestUnsolicitedInboundDropped(t *testing.T) {
	f := forwardFixture(t)
	probe := packet.NewBuilder(mac.MustParse("20:4e:7f:00:00:01"), mac.MustParse(fwdDevHW)).TCPv4(
		fwdRemote, netip.MustParseAddr("203.0.113.5"),
		packet.TCP{SrcPort: 443, DstPort: 33333, Flags: packet.FlagSYN}, 60, nil)
	if err := f.agent.DeliverDown(probe, f.clk.Now(), nil); err == nil {
		t.Fatal("unsolicited inbound delivered")
	}
	if len(f.agent.Monitor().Flows()) != 0 {
		t.Fatal("dropped frame captured")
	}
}

func TestAttributeExternal(t *testing.T) {
	f := forwardFixture(t)
	var wire []byte
	f.agent.ForwardUp(lanFrame(f, 6000, 10), f.clk.Now(), func(b []byte, _ time.Time) { wire = b })
	f.clk.Advance(time.Second)
	p, _ := packet.Decode(wire)
	ep, err := f.agent.AttributeExternal("tcp", p.TCP.SrcPort)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Addr != fwdDev || ep.Port != 6000 {
		t.Fatalf("attributed to %v", ep)
	}
	if _, err := f.agent.AttributeExternal("udp", p.TCP.SrcPort); err == nil {
		t.Fatal("wrong-protocol attribution succeeded")
	}
}

func TestForwardWithoutNAT(t *testing.T) {
	f := newFixture(t, true)
	f.agent.PowerOn(f.sched)
	if err := f.agent.ForwardUp(lanFrame(f, 5000, 10), f.clk.Now(), nil); err != ErrNoNAT {
		t.Fatalf("err = %v", err)
	}
}

func TestForwardWhilePoweredOff(t *testing.T) {
	f := forwardFixture(t)
	f.agent.PowerOff(f.clk.Now())
	if err := f.agent.ForwardUp(lanFrame(f, 5000, 10), f.clk.Now(), nil); err == nil {
		t.Fatal("forwarded while off")
	}
}

func TestForwardDuringLinkOutage(t *testing.T) {
	f := forwardFixture(t)
	f.env.Link.SetOutage(true)
	err := f.agent.ForwardUp(lanFrame(f, 5000, 10), f.clk.Now(), nil)
	if err != ErrLinkDown {
		t.Fatalf("err = %v", err)
	}
}
