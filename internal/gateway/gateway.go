// Package gateway implements the BISmark router agent: the piece of
// firmware the paper deployed in 126 homes. The agent runs the full
// measurement schedule of §3.2.2 —
//
//   - heartbeats to the collection server ≈ once a minute;
//   - an uptime report every twelve hours;
//   - a ShaperProbe capacity measurement every twelve hours;
//   - an hourly census of wired and per-band wireless devices;
//   - a WiFi neighbourhood scan every ten minutes, throttled when
//     clients are associated (scans can knock clients off);
//   - continuous passive capture of LAN traffic, anonymized before
//     export, only in homes that consented (the Traffic subset).
//
// The agent is driven by a scheduler over a clock, so the identical code
// runs against the simulated world (deterministic, fast-forwarded) and
// against real sockets (cmd/bismark-gateway).
package gateway

import (
	"net/netip"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capmgmt"
	"natpeek/internal/capture"
	"natpeek/internal/dataset"
	"natpeek/internal/dhcp"
	"natpeek/internal/eventsim"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/nat"
	"natpeek/internal/packet"
	"natpeek/internal/shaperprobe"
	"natpeek/internal/telemetry"
	"natpeek/internal/wifi"
)

// Sink receives everything the agent measures. The collector implements
// it over HTTP/UDP; the world simulator implements it in memory.
type Sink interface {
	Heartbeat(routerID string, at time.Time)
	UptimeReport(r dataset.UptimeReport)
	CapacityMeasure(c dataset.CapacityMeasure)
	DeviceCensus(c dataset.DeviceCount, sightings []dataset.DeviceSighting)
	WiFiScan(scans []dataset.WiFiScan)
	TrafficFlows(flows []dataset.FlowRecord)
	TrafficThroughput(samples []dataset.ThroughputSample)
}

// windowSink is the optional tracing extension of Sink: a sink that
// wants export-window context around each measurement pass implements
// it (collector.Client does; the simulator's in-memory sink does not).
// Discovering it structurally keeps Sink — and every existing
// implementation — unchanged.
type windowSink interface {
	BeginExportWindow(kind string, at time.Time)
	EndExportWindow(at time.Time)
}

// exportWindow brackets one measurement pass for sinks that trace.
// It returns the close function; callers defer it.
func (a *Agent) exportWindow(kind string, now time.Time) func() {
	ws, ok := a.sink.(windowSink)
	if !ok {
		return func() {}
	}
	ws.BeginExportWindow(kind, now)
	return func() { ws.EndExportWindow(now) }
}

// Config tunes an agent.
type Config struct {
	ID        string
	LANPrefix netip.Prefix
	// AnonKey keys the privacy transforms; one key per study period.
	AnonKey []byte
	// TrafficConsent enables flow/throughput export (25 of the paper's
	// homes). Without consent the agent still counts devices but exports
	// no traffic detail.
	TrafficConsent bool
	// UserWhitelist extends the Alexa-200 domain whitelist.
	UserWhitelist []string

	// Measurement cadence (defaults: 1 min, 12 h, 1 h, 10 min).
	HeartbeatEvery time.Duration
	ReportEvery    time.Duration
	CensusEvery    time.Duration
	ScanEvery      time.Duration

	// ScanThrottle divides the scan rate when clients are associated
	// (default 3: scan every 30 min instead of every 10).
	ScanThrottle int

	// ProbeTrainLength configures ShaperProbe (default 100 packets).
	ProbeTrainLength int

	// Plan, when set, enables the uCap-style usage-cap manager (§3.1):
	// every captured frame is charged to its device and threshold alerts
	// surface through CapAlerts.
	Plan *capmgmt.Plan
}

func (c *Config) fill() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Minute
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 12 * time.Hour
	}
	if c.CensusEvery <= 0 {
		c.CensusEvery = time.Hour
	}
	if c.ScanEvery <= 0 {
		c.ScanEvery = 10 * time.Minute
	}
	if c.ScanThrottle <= 0 {
		c.ScanThrottle = 3
	}
	if c.ProbeTrainLength <= 0 {
		c.ProbeTrainLength = 100
	}
}

// Env is the home environment the agent is plugged into.
type Env struct {
	// Link is the access link (nil when running over real sockets; the
	// capacity probe is then skipped).
	Link *linksim.Link
	// Radio24/Radio5 are the two radios of the WNDR3800.
	Radio24 *wifi.Radio
	Radio5  *wifi.Radio
	// DHCP is the LAN lease table.
	DHCP *dhcp.Server
	// NAT is the translation table on the forwarding path (required for
	// ForwardUp/DeliverDown).
	NAT *nat.Table

	wired map[mac.Addr]bool
}

// AttachWired plugs a device into an Ethernet port.
func (e *Env) AttachWired(hw mac.Addr) {
	if e.wired == nil {
		e.wired = make(map[mac.Addr]bool)
	}
	e.wired[hw] = true
}

// DetachWired unplugs a device.
func (e *Env) DetachWired(hw mac.Addr) { delete(e.wired, hw) }

// WiredCount returns the number of Ethernet-attached devices.
func (e *Env) WiredCount() int { return len(e.wired) }

// WiredDevices returns the Ethernet-attached devices (sorted).
func (e *Env) WiredDevices() []mac.Addr {
	out := make([]mac.Addr, 0, len(e.wired))
	for hw := range e.wired {
		out = append(out, hw)
	}
	sortMACs(out)
	return out
}

func sortMACs(s []mac.Addr) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].String() < s[j-1].String(); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Agent is a running BISmark router.
type Agent struct {
	cfg  Config
	sink Sink
	env  *Env

	anon    *anonymize.Policy
	monitor *capture.Monitor

	caps      *capmgmt.Manager
	capAlerts []capmgmt.Alert

	bootAt  time.Time
	running bool
	tasks   []*eventsim.Task

	// scanSkips throttles WiFi scans per radio (index 0 = 2.4 GHz,
	// 1 = 5 GHz). The counters are independent: with clients on both
	// bands, each radio still scans every ScanThrottle-th pass instead
	// of the two radios splitting one budget on alternating passes.
	scanSkips [2]int

	// measurement-loop telemetry, resolved once per agent; every counter
	// is shared across the fleet, so the fleet-wide run/skip balance is
	// one scrape away.
	mRuns  *agentKindCounters
	mSkips *agentKindCounters

	stats ExportStats
}

// agentKindCounters caches the per-kind counters of one labeled family so
// the scheduler callbacks do a single atomic add, not a map lookup.
type agentKindCounters struct {
	heartbeat, census, scan, report, capacity *telemetry.Counter
}

func newAgentKindCounters(vec *telemetry.CounterVec) *agentKindCounters {
	return &agentKindCounters{
		heartbeat: vec.With("heartbeat"),
		census:    vec.With("census"),
		scan:      vec.With("scan"),
		report:    vec.With("report"),
		capacity:  vec.With("capacity"),
	}
}

// New builds an agent.
func New(cfg Config, sink Sink, env *Env) *Agent {
	cfg.fill()
	anon := anonymize.New(cfg.AnonKey)
	return &Agent{
		cfg:  cfg,
		sink: sink,
		env:  env,
		anon: anon,
		monitor: capture.New(capture.Config{
			LANPrefix:     cfg.LANPrefix,
			UserWhitelist: cfg.UserWhitelist,
		}, anon),
		mRuns: newAgentKindCounters(telemetry.Default.CounterVec(
			"natpeek_gateway_measurements_total",
			"Measurements executed by gateway agents in this process, per kind.", "kind")),
		mSkips: newAgentKindCounters(telemetry.Default.CounterVec(
			"natpeek_gateway_measurements_skipped_total",
			"Measurements skipped (link outage, scan throttle), per kind.", "kind")),
	}
}

// Anonymizer exposes the agent's privacy policy (the world uses it to
// anonymize fast-path records identically).
func (a *Agent) Anonymizer() *anonymize.Policy { return a.anon }

// Running reports whether the router is powered on.
func (a *Agent) Running() bool { return a.running }

// BootedAt returns the boot time of the current power cycle.
func (a *Agent) BootedAt() time.Time { return a.bootAt }

// PowerOn boots the router and starts the measurement schedule on sched.
func (a *Agent) PowerOn(sched *eventsim.Scheduler) {
	if a.running {
		return
	}
	a.running = true
	a.bootAt = sched.Clock().Now()
	if a.cfg.Plan != nil && a.caps == nil {
		a.caps = capmgmt.New(*a.cfg.Plan, a.bootAt)
	}

	hb := sched.Every(a.cfg.HeartbeatEvery, 5*time.Second, func(now time.Time) {
		a.sendHeartbeat(now)
	})
	census := sched.Every(a.cfg.CensusEvery, time.Minute, func(now time.Time) {
		a.census(now)
	})
	scan := sched.Every(a.cfg.ScanEvery, 30*time.Second, func(now time.Time) {
		a.scan(now)
	})
	report := sched.Every(a.cfg.ReportEvery, time.Minute, func(now time.Time) {
		a.report(sched, now)
	})
	a.tasks = []*eventsim.Task{hb, census, scan, report}
}

// PowerOff shuts the router down, cancelling all scheduled work and
// flushing consented traffic data (the real firmware persisted its
// buffers to flash).
func (a *Agent) PowerOff(now time.Time) {
	if !a.running {
		return
	}
	a.running = false
	for _, t := range a.tasks {
		t.Cancel()
	}
	a.tasks = nil
	a.finalFlush(now)
}

// sendHeartbeat emits one heartbeat unless the link is in outage (the
// datagram would be lost in the access network).
func (a *Agent) sendHeartbeat(now time.Time) {
	if a.env.Link != nil && a.env.Link.Outage() {
		a.mSkips.heartbeat.Inc()
		return
	}
	a.mRuns.heartbeat.Inc()
	a.sink.Heartbeat(a.cfg.ID, now)
	a.stats.Heartbeats++
}

// census counts attached devices per connection kind and reports
// anonymized per-device sightings.
func (a *Agent) census(now time.Time) {
	a.mRuns.census.Inc()
	defer a.exportWindow("census", now)()
	count := dataset.DeviceCount{
		RouterID: a.cfg.ID,
		At:       now,
		Wired:    a.env.WiredCount(),
	}
	var sightings []dataset.DeviceSighting
	add := func(hw mac.Addr, kind dataset.ConnKind) {
		sightings = append(sightings, dataset.DeviceSighting{
			RouterID: a.cfg.ID, At: now, Device: a.anon.MAC(hw), Kind: kind,
		})
	}
	for _, hw := range a.env.WiredDevices() {
		add(hw, dataset.Wired)
	}
	if a.env.Radio24 != nil {
		count.W24 = a.env.Radio24.ClientCount()
		for _, hw := range a.env.Radio24.Clients() {
			add(hw, dataset.Wireless24)
		}
	}
	if a.env.Radio5 != nil {
		count.W5 = a.env.Radio5.ClientCount()
		for _, hw := range a.env.Radio5.Clients() {
			add(hw, dataset.Wireless5)
		}
	}
	a.sink.DeviceCensus(count, sightings)
	a.stats.DeviceCensusRows += int64(1 + len(sightings))
}

// scan surveys both radios' channels, throttling when clients are
// associated (the §3.2.2 disassociation side effect).
func (a *Agent) scan(now time.Time) {
	defer a.exportWindow("scan", now)()
	var scans []dataset.WiFiScan
	for i, r := range []*wifi.Radio{a.env.Radio24, a.env.Radio5} {
		if r == nil {
			continue
		}
		if r.ClientCount() > 0 {
			a.scanSkips[i]++
			if a.scanSkips[i]%a.cfg.ScanThrottle != 0 {
				a.mSkips.scan.Inc()
				continue
			}
		}
		a.mRuns.scan.Inc()
		res := r.Scan()
		scans = append(scans, dataset.WiFiScan{
			RouterID:   a.cfg.ID,
			At:         now,
			Band:       r.Band.String(),
			Channel:    res.Channel,
			VisibleAPs: len(res.VisibleAPs),
			Clients:    r.ClientCount(),
		})
	}
	if len(scans) > 0 {
		a.sink.WiFiScan(scans)
		a.stats.WiFiScanRows += int64(len(scans))
	}
}

// report sends the 12-hourly uptime report, runs the capacity probe, and
// flushes consented traffic data.
func (a *Agent) report(sched *eventsim.Scheduler, now time.Time) {
	a.mRuns.report.Inc()
	defer a.exportWindow("report", now)()
	a.sink.UptimeReport(dataset.UptimeReport{
		RouterID:   a.cfg.ID,
		ReportedAt: now,
		Uptime:     now.Sub(a.bootAt),
	})
	a.stats.UptimeReports++
	if a.env.Link != nil && !a.env.Link.Outage() {
		a.mRuns.capacity.Inc()
		a.probeCapacity(sched, now)
	} else if a.env.Link != nil {
		a.mSkips.capacity.Inc()
	}
	a.flushTraffic(now)
}

// probeCapacity measures both directions with ShaperProbe.
func (a *Agent) probeCapacity(sched *eventsim.Scheduler, now time.Time) {
	cfg := shaperprobe.Config{TrainLength: a.cfg.ProbeTrainLength}
	var up shaperprobe.Estimate
	clk := sched.Clock()
	shaperprobe.Probe(clk, a.env.Link.Up, cfg, func(e shaperprobe.Estimate) {
		up = e
		shaperprobe.Probe(clk, a.env.Link.Down, cfg, func(down shaperprobe.Estimate) {
			a.sink.CapacityMeasure(dataset.CapacityMeasure{
				RouterID:   a.cfg.ID,
				MeasuredAt: now,
				UpBps:      up.SustainedBps,
				DownBps:    down.SustainedBps,
			})
			a.stats.CapacityMeasures++
		})
	})
}

// CensusNow triggers one device census immediately. The fleet simulator
// drives censuses from precomputed schedules through this entry point so
// the exported rows go through the same code as the live agent's.
func (a *Agent) CensusNow(now time.Time) { a.census(now) }

// ScanNow triggers one WiFi scan pass immediately (throttling included).
func (a *Agent) ScanNow(now time.Time) { a.scan(now) }

// ReportUptimeNow emits one uptime report with an explicit boot time.
func (a *Agent) ReportUptimeNow(now, bootedAt time.Time) {
	a.sink.UptimeReport(dataset.UptimeReport{
		RouterID:   a.cfg.ID,
		ReportedAt: now,
		Uptime:     now.Sub(bootedAt),
	})
	a.stats.UptimeReports++
}

// HandleFrame feeds one LAN-side frame to the passive monitor and, when
// a data plan is configured, charges it to the device's usage budget.
func (a *Agent) HandleFrame(raw []byte, up bool, now time.Time) {
	if !a.running {
		return
	}
	dir := capture.Downstream
	if up {
		dir = capture.Upstream
	}
	a.monitor.Process(raw, dir, now)
	if a.caps != nil {
		if dev, ok := frameDevice(raw, up); ok {
			alerts := a.caps.Record(a.anon.MAC(dev), int64(len(raw)), now)
			a.capAlerts = append(a.capAlerts, alerts...)
		}
	}
}

// frameDevice extracts the LAN device MAC from a frame.
func frameDevice(raw []byte, up bool) (mac.Addr, bool) {
	var eth packet.Ethernet
	if _, err := eth.Unmarshal(raw); err != nil {
		return mac.Addr{}, false
	}
	if up {
		return eth.Src, true
	}
	return eth.Dst, true
}

// CapManager exposes the usage-cap manager (nil when no plan is set).
func (a *Agent) CapManager() *capmgmt.Manager { return a.caps }

// CapAlerts drains the threshold alerts fired since the last call.
func (a *Agent) CapAlerts() []capmgmt.Alert {
	out := a.capAlerts
	a.capAlerts = nil
	return out
}

// Monitor exposes the passive monitor (read-only use in tests/examples).
func (a *Agent) Monitor() *capture.Monitor { return a.monitor }

// ExportStats tallies what an agent has handed to its sink, one counter
// per data set. The verify harness compares these against what the
// traffic generator produced and what the collector ingested — every
// byte and row must be conserved across the layers.
type ExportStats struct {
	Heartbeats          int64
	UptimeReports       int64
	CapacityMeasures    int64
	DeviceCensusRows    int64
	WiFiScanRows        int64
	FlowRecords         int64
	FlowUpBytes         int64
	FlowDownBytes       int64
	FlowUpPkts          int64
	FlowDownPkts        int64
	ThroughputRows      int64
	ThroughputUpBytes   int64
	ThroughputDownBytes int64
}

// Add accumulates other into s (for fleet-wide totals).
func (s *ExportStats) Add(other ExportStats) {
	s.Heartbeats += other.Heartbeats
	s.UptimeReports += other.UptimeReports
	s.CapacityMeasures += other.CapacityMeasures
	s.DeviceCensusRows += other.DeviceCensusRows
	s.WiFiScanRows += other.WiFiScanRows
	s.FlowRecords += other.FlowRecords
	s.FlowUpBytes += other.FlowUpBytes
	s.FlowDownBytes += other.FlowDownBytes
	s.FlowUpPkts += other.FlowUpPkts
	s.FlowDownPkts += other.FlowDownPkts
	s.ThroughputRows += other.ThroughputRows
	s.ThroughputUpBytes += other.ThroughputUpBytes
	s.ThroughputDownBytes += other.ThroughputDownBytes
}

// ExportStats returns a snapshot of the agent's cumulative export
// accounting.
func (a *Agent) ExportStats() ExportStats { return a.stats }

// flushTraffic exports newly finished flow records and throughput
// samples if the household consented. Export drains the monitor's
// finished-flow list, so each flow is exported exactly once, with final
// totals — live flows wait for idle timeout (or power-off) rather than
// being exported mid-life with partial counts. Throughput is exported
// only for minutes complete at flush time: draining the in-progress
// minute would split it across two uploads, producing two rows with the
// same (router, minute, direction) dedupe key.
func (a *Agent) flushTraffic(now time.Time) {
	if !a.cfg.TrafficConsent {
		return
	}
	a.monitor.ExpireFlows(now)
	cutoff := now.Truncate(time.Minute)
	a.exportFinished(func(dir capture.Dir) []capture.SecondSample {
		return a.monitor.TakeThroughputBefore(dir, cutoff)
	})
}

// FlushTrafficNow forces a periodic-style traffic export at now, as if
// the jittered report task had just fired. Harness hook: the verify
// golden runs use it to flush at controlled instants.
func (a *Agent) FlushTrafficNow(now time.Time) { a.flushTraffic(now) }

// finalFlush is flushTraffic for power-off: every live flow is finished
// first (the real firmware persisted its buffers to flash), so nothing
// in the monitor is lost with the power. Unlike the periodic flush, it
// drains the in-progress minute too — there will be no later flush to
// pick it up.
func (a *Agent) finalFlush(now time.Time) {
	if !a.cfg.TrafficConsent {
		return
	}
	defer a.exportWindow("final-flush", now)()
	a.monitor.ExpireFlows(now)
	a.monitor.FinishAll()
	a.exportFinished(a.monitor.TakeThroughput)
}

func (a *Agent) exportFinished(take func(capture.Dir) []capture.SecondSample) {
	if flows := a.monitor.TakeFinishedFlows(); len(flows) > 0 {
		recs := make([]dataset.FlowRecord, 0, len(flows))
		for _, f := range flows {
			recs = append(recs, dataset.FlowRecord{
				RouterID:  a.cfg.ID,
				Device:    f.Key.Device,
				Domain:    f.Domain,
				Proto:     f.Key.Proto.String(),
				First:     f.First,
				Last:      f.Last,
				UpBytes:   f.UpBytes,
				DownBytes: f.DownBytes,
				UpPkts:    f.UpPkts,
				DownPkts:  f.DownPkts,
				Conns:     1,
			})
		}
		a.sink.TrafficFlows(recs)
		a.stats.FlowRecords += int64(len(recs))
		for _, r := range recs {
			a.stats.FlowUpBytes += r.UpBytes
			a.stats.FlowDownBytes += r.DownBytes
			a.stats.FlowUpPkts += r.UpPkts
			a.stats.FlowDownPkts += r.DownPkts
		}
	}
	samples := a.aggregateThroughput(take)
	if len(samples) > 0 {
		a.sink.TrafficThroughput(samples)
		a.stats.ThroughputRows += int64(len(samples))
		for _, s := range samples {
			switch s.Dir {
			case capture.Upstream.String():
				a.stats.ThroughputUpBytes += s.TotalBytes
			case capture.Downstream.String():
				a.stats.ThroughputDownBytes += s.TotalBytes
			}
		}
	}
}

// aggregateThroughput converts per-second history obtained from take
// into the per-minute (peak, total) rows of the Traffic data set. The
// taken history is consumed.
func (a *Agent) aggregateThroughput(take func(capture.Dir) []capture.SecondSample) []dataset.ThroughputSample {
	var out []dataset.ThroughputSample
	for _, dir := range []capture.Dir{capture.Upstream, capture.Downstream} {
		secs := take(dir)
		if len(secs) == 0 {
			continue
		}
		var cur time.Time
		var peak, total int64
		flush := func() {
			if total > 0 {
				out = append(out, dataset.ThroughputSample{
					RouterID:   a.cfg.ID,
					Minute:     cur,
					Dir:        dir.String(),
					PeakBps:    float64(peak * 8),
					TotalBytes: total,
				})
			}
		}
		for _, s := range secs {
			m := s.Second.Truncate(time.Minute)
			if !m.Equal(cur) {
				flush()
				cur, peak, total = m, 0, 0
			}
			if s.Bytes > peak {
				peak = s.Bytes
			}
			total += s.Bytes
		}
		flush()
	}
	return out
}
