// Package dns implements the subset of DNS the study's passive monitor
// needs: building and parsing query/response messages carrying A and CNAME
// records. The gateway sniffs DNS responses on port 53 to learn
// IP→domain bindings ("We collect a sample of A and CNAME records",
// §3.2.2); that mapping is what turns anonymous flow endpoints into the
// domain rankings of Figs. 18–20.
//
// Parsing handles RFC 1035 name compression; encoding emits uncompressed
// names for simplicity.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types supported.
const (
	TypeA     uint16 = 1
	TypeCNAME uint16 = 5
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Errors returned by the parser.
var (
	ErrTruncated = errors.New("dns: truncated message")
	ErrBadName   = errors.New("dns: malformed name")
	ErrLoop      = errors.New("dns: compression loop")
)

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record. Only A, AAAA and CNAME carry decoded data:
// A/AAAA fill Addr, CNAME fills Target.
type RR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Addr   netip.Addr // TypeA / TypeAAAA
	Target string     // TypeCNAME
	Data   []byte     // other types, raw RDATA
}

// Message is a DNS message.
type Message struct {
	ID        uint16
	Response  bool
	RCode     uint8
	Questions []Question
	Answers   []RR
}

// NewQuery builds a single-question A query.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{ID: id, Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}}}
}

// Answer appends an answer record and marks the message as a response.
func (m *Message) Answer(rr RR) *Message {
	m.Response = true
	m.Answers = append(m.Answers, rr)
	return m
}

// Marshal serializes the message.
func (m *Message) Marshal() []byte {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15 // QR
		flags |= 1 << 8  // RD (copied by resolvers)
		flags |= 1 << 7  // RA
	} else {
		flags |= 1 << 8 // RD
	}
	flags |= uint16(m.RCode & 0x0f)
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, 0) // NS
	b = binary.BigEndian.AppendUint16(b, 0) // AR
	for _, q := range m.Questions {
		b = appendName(b, q.Name)
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, rr := range m.Answers {
		b = appendName(b, rr.Name)
		b = binary.BigEndian.AppendUint16(b, rr.Type)
		b = binary.BigEndian.AppendUint16(b, rr.Class)
		b = binary.BigEndian.AppendUint32(b, rr.TTL)
		var rdata []byte
		switch rr.Type {
		case TypeA:
			a4 := rr.Addr.As4()
			rdata = a4[:]
		case TypeAAAA:
			a16 := rr.Addr.As16()
			rdata = a16[:]
		case TypeCNAME:
			rdata = appendName(nil, rr.Target)
		default:
			rdata = rr.Data
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(rdata)))
		b = append(b, rdata...)
	}
	return b
}

// Parse decodes a DNS message.
func Parse(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("%w: header (%d bytes)", ErrTruncated, len(b))
	}
	m := &Message{ID: binary.BigEndian.Uint16(b[0:2])}
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&(1<<15) != 0
	m.RCode = uint8(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(b) {
			return nil, fmt.Errorf("%w: question %d", ErrTruncated, i)
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(b) {
			return nil, fmt.Errorf("%w: answer %d", ErrTruncated, i)
		}
		rr := RR{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(b[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if off+rdlen > len(b) {
			return nil, fmt.Errorf("%w: rdata %d", ErrTruncated, i)
		}
		rdata := b[off : off+rdlen]
		switch rr.Type {
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dns: A rdata length %d", rdlen)
			}
			rr.Addr = netip.AddrFrom4([4]byte(rdata))
		case TypeAAAA:
			if rdlen != 16 {
				return nil, fmt.Errorf("dns: AAAA rdata length %d", rdlen)
			}
			rr.Addr = netip.AddrFrom16([16]byte(rdata))
		case TypeCNAME:
			t, _, err := parseName(b, off)
			if err != nil {
				return nil, err
			}
			rr.Target = t
		default:
			rr.Data = append([]byte(nil), rdata...)
		}
		off += rdlen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

// appendName encodes a domain name in uncompressed label form.
func appendName(b []byte, name string) []byte {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				// Consecutive or leading dots would otherwise encode a
				// zero-length label, which terminates the wire name early
				// and truncates everything after it on re-parse.
				continue
			}
			if len(label) > 63 {
				label = label[:63]
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0)
}

// parseName decodes a (possibly compressed) name starting at off and
// returns the name plus the offset just past it in the original stream.
func parseName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("%w: name at %d", ErrTruncated, off)
		}
		l := int(b[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("%w: pointer at %d", ErrTruncated, off)
			}
			if hops++; hops > 32 {
				return "", 0, ErrLoop
			}
			ptr := int(binary.BigEndian.Uint16(b[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrBadName)
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: label prefix %#x", ErrBadName, l)
		default:
			if off+1+l > len(b) {
				return "", 0, fmt.Errorf("%w: label at %d", ErrTruncated, off)
			}
			labels = append(labels, string(b[off+1:off+1+l]))
			if len(labels) > 128 {
				return "", 0, ErrBadName
			}
			off += 1 + l
		}
	}
}

// Cache is a TTL-less DNS cache that remembers the most recent IP→domain
// binding, following CNAME chains to the queried name. The gateway keeps
// one per home; lookups attribute flow endpoints to domains.
type Cache struct {
	byAddr map[netip.Addr]string
	limit  int
}

// NewCache returns a cache bounded to limit entries (oldest arbitrary-
// evicted beyond that; the gateway's working set is tiny).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = 4096
	}
	return &Cache{byAddr: make(map[netip.Addr]string), limit: limit}
}

// Observe records the bindings from a response message: every A/AAAA
// answer maps its address to the original queried name (the first
// question's name) so CNAME chains resolve to the user-visible domain.
func (c *Cache) Observe(m *Message) {
	if m == nil || !m.Response || len(m.Questions) == 0 {
		return
	}
	qname := strings.ToLower(m.Questions[0].Name)
	for _, rr := range m.Answers {
		if rr.Type != TypeA && rr.Type != TypeAAAA {
			continue
		}
		if len(c.byAddr) >= c.limit {
			for k := range c.byAddr {
				delete(c.byAddr, k)
				break
			}
		}
		c.byAddr[rr.Addr] = qname
	}
}

// Domain returns the domain most recently resolved to addr, or "".
func (c *Cache) Domain(addr netip.Addr) string { return c.byAddr[addr] }

// Len returns the number of cached bindings.
func (c *Cache) Len() int { return len(c.byAddr) }
