package dns

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.google.com", TypeA)
	b := q.Marshal()
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || m.Response {
		t.Fatalf("header wrong: %+v", m)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "www.google.com" || m.Questions[0].Type != TypeA {
		t.Fatalf("question wrong: %+v", m.Questions)
	}
}

func TestResponseRoundTripA(t *testing.T) {
	addr := netip.MustParseAddr("173.194.43.36")
	m := NewQuery(7, "google.com", TypeA).Answer(RR{
		Name: "google.com", Type: TypeA, Class: ClassIN, TTL: 300, Addr: addr,
	})
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || len(got.Answers) != 1 {
		t.Fatalf("got %+v", got)
	}
	if got.Answers[0].Addr != addr || got.Answers[0].TTL != 300 {
		t.Fatalf("answer %+v", got.Answers[0])
	}
}

func TestResponseRoundTripCNAMEChain(t *testing.T) {
	m := NewQuery(9, "www.netflix.com", TypeA)
	m.Answer(RR{Name: "www.netflix.com", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "edge.nflxvideo.net"})
	m.Answer(RR{Name: "edge.nflxvideo.net", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.MustParseAddr("198.38.96.1")})
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].Target != "edge.nflxvideo.net" {
		t.Fatalf("cname target %q", got.Answers[0].Target)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("2607:f8b0::1")
	m := NewQuery(1, "google.com", TypeAAAA).Answer(RR{Name: "google.com", Type: TypeAAAA, Class: ClassIN, Addr: addr})
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Addr != addr {
		t.Fatalf("addr %v", got.Answers[0].Addr)
	}
}

func TestUnknownTypeKeptRaw(t *testing.T) {
	m := NewQuery(2, "example.com", 16 /* TXT */).Answer(RR{Name: "example.com", Type: 16, Class: ClassIN, Data: []byte{3, 'a', 'b', 'c'}})
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Answers[0].Data) != "\x03abc" {
		t.Fatalf("raw data %v", got.Answers[0].Data)
	}
}

func TestParseCompressedName(t *testing.T) {
	// Hand-build a response with a compression pointer: answer name
	// points back at the question name at offset 12.
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 42)     // ID
	b = binary.BigEndian.AppendUint16(b, 0x8180) // QR response
	b = binary.BigEndian.AppendUint16(b, 1)      // QD
	b = binary.BigEndian.AppendUint16(b, 1)      // AN
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, 6, 'g', 'o', 'o', 'g', 'l', 'e', 3, 'c', 'o', 'm', 0)
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	b = append(b, 0xc0, 12) // pointer to offset 12
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	b = binary.BigEndian.AppendUint32(b, 300)
	b = binary.BigEndian.AppendUint16(b, 4)
	b = append(b, 8, 8, 8, 8)
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "google.com" {
		t.Fatalf("compressed name = %q", m.Answers[0].Name)
	}
	if m.Answers[0].Addr != netip.MustParseAddr("8.8.8.8") {
		t.Fatalf("addr = %v", m.Answers[0].Addr)
	}
}

func TestParseRejectsPointerLoop(t *testing.T) {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0x8180)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	// Name is a pointer to itself.
	b = append(b, 0xc0, 12)
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	if _, err := Parse(b); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestParseTruncated(t *testing.T) {
	q := NewQuery(3, "a.example.com", TypeA)
	full := q.Marshal()
	for n := 0; n < len(full); n++ {
		if _, err := Parse(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestParseGarbageNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		Parse(raw)
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	names := []string{"google.com", "a.b.c.d.e.f", "x.io", "very-long-label-with-dashes.example.org"}
	for _, n := range names {
		b := appendName(nil, n)
		got, end, err := parseName(b, 0)
		if err != nil {
			t.Fatalf("%q: %v", n, err)
		}
		if got != n {
			t.Fatalf("%q -> %q", n, got)
		}
		if end != len(b) {
			t.Fatalf("%q: end %d of %d", n, end, len(b))
		}
	}
}

func TestRootName(t *testing.T) {
	b := appendName(nil, "")
	got, _, err := parseName(b, 0)
	if err != nil || got != "" {
		t.Fatalf("root name: %q, %v", got, err)
	}
}

func TestCacheObserveAndLookup(t *testing.T) {
	c := NewCache(0)
	addr := netip.MustParseAddr("198.38.96.1")
	m := NewQuery(9, "WWW.Netflix.COM", TypeA)
	m.Answer(RR{Name: "www.netflix.com", Type: TypeCNAME, Class: ClassIN, Target: "edge.nflxvideo.net"})
	m.Answer(RR{Name: "edge.nflxvideo.net", Type: TypeA, Class: ClassIN, Addr: addr})
	c.Observe(m)
	// The *queried* (user-visible) name wins, lower-cased.
	if got := c.Domain(addr); got != "www.netflix.com" {
		t.Fatalf("Domain = %q", got)
	}
	if c.Domain(netip.MustParseAddr("1.2.3.4")) != "" {
		t.Fatal("unknown addr resolved")
	}
}

func TestCacheIgnoresQueriesAndEmpty(t *testing.T) {
	c := NewCache(0)
	c.Observe(nil)
	c.Observe(NewQuery(1, "x.com", TypeA)) // not a response
	resp := &Message{Response: true}       // no questions
	resp.Answers = []RR{{Type: TypeA, Addr: netip.MustParseAddr("1.1.1.1")}}
	c.Observe(resp)
	if c.Len() != 0 {
		t.Fatalf("cache grew to %d", c.Len())
	}
}

func TestCacheBounded(t *testing.T) {
	c := NewCache(10)
	for i := 0; i < 100; i++ {
		m := NewQuery(uint16(i), "site.example", TypeA)
		m.Answer(RR{Name: "site.example", Type: TypeA, Class: ClassIN,
			Addr: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})})
		c.Observe(m)
	}
	if c.Len() > 10 {
		t.Fatalf("cache exceeded limit: %d", c.Len())
	}
}

func BenchmarkParseResponse(b *testing.B) {
	m := NewQuery(9, "www.netflix.com", TypeA)
	m.Answer(RR{Name: "www.netflix.com", Type: TypeCNAME, Class: ClassIN, Target: "edge.nflxvideo.net"})
	m.Answer(RR{Name: "edge.nflxvideo.net", Type: TypeA, Class: ClassIN, Addr: netip.MustParseAddr("198.38.96.1")})
	raw := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}
