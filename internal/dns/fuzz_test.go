package dns

import (
	"bytes"
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// FuzzParse fuzzes the wire-format parser the gateway runs on every
// sniffed port-53 payload. Properties:
//
//  1. Parse never panics, whatever the bytes.
//  2. Cache.Observe accepts anything Parse accepted (the capture path
//     feeds it unconditionally).
//  3. Marshal∘Parse is a fixed point: this package encodes a canonical
//     (uncompressed) form, so once a parsed message has been re-encoded,
//     parsing and re-encoding again must reproduce identical bytes.
//     Re-parse may legitimately fail — e.g. canonicalization can split a
//     dotted label into more than the 128-label cap — but it must not
//     produce different bytes.
func FuzzParse(f *testing.F) {
	// A realistic response the capture pipeline actually sniffs: query +
	// A answer, as built by trafficgen's frame mode.
	resp := NewQuery(0x1234, "www.example.com", TypeA).Answer(RR{
		Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300,
		Addr: mustAddr("203.0.113.7"),
	})
	f.Add(resp.Marshal())
	// CNAME chain with an unknown-type record (raw RDATA path).
	chain := NewQuery(7, "cdn.example.org", TypeA).
		Answer(RR{Name: "cdn.example.org", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "edge.example.net"}).
		Answer(RR{Name: "edge.example.net", Type: TypeA, Class: ClassIN, TTL: 60, Addr: mustAddr("198.51.100.9")}).
		Answer(RR{Name: "edge.example.net", Type: 16, Class: ClassIN, TTL: 60, Data: []byte("v=spf1")})
	f.Add(chain.Marshal())
	// Self-referential compression pointer at the first question name
	// (offset 12 → 12): must be rejected, never spin.
	f.Add([]byte("\x12\x34\x81\x80\x00\x01\x00\x00\x00\x00\x00\x00\xc0\x0c\x00\x01\x00\x01"))
	// Mutual pointer loop 12→14→12.
	f.Add([]byte("\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\xc0\x0e\xc0\x0c\x00\x01\x00\x01"))
	// Truncated header.
	f.Add([]byte("\x00\x01\x81"))

	f.Fuzz(func(t *testing.T, b []byte) {
		m1, err := Parse(b)
		if err != nil {
			return
		}
		c := NewCache(16)
		c.Observe(m1)
		b2 := m1.Marshal()
		m2, err := Parse(b2)
		if err != nil {
			return
		}
		b3 := m2.Marshal()
		if !bytes.Equal(b2, b3) {
			t.Fatalf("Marshal∘Parse not a fixed point:\n b2=%x\n b3=%x", b2, b3)
		}
	})
}
