package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("got %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 9 {
		t.Fatal("endpoint quantiles wrong")
	}
}

func TestQuantileSingle(t *testing.T) {
	if Quantile([]float64{7}, 0.73) != 7 {
		t.Fatal("single-sample quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentile95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	p := Percentile(xs, 95)
	if !almost(p, 95.05, 1e-9) {
		t.Fatalf("p95 = %v", p)
	}
}

func TestCDFMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		cdf := CDF(xs)
		if len(xs) == 0 {
			return cdf == nil
		}
		prevX := math.Inf(-1)
		prevP := 0.0
		for _, pt := range cdf {
			if pt.X <= prevX && len(cdf) > 1 {
				return false
			}
			if pt.P < prevP || pt.P > 1 {
				return false
			}
			prevX, prevP = pt.X, pt.P
		}
		return almost(cdf[len(cdf)-1].P, 1, 1e-12)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFDuplicatesCollapse(t *testing.T) {
	cdf := CDF([]float64{1, 1, 1, 2})
	if len(cdf) != 2 {
		t.Fatalf("len = %d, want 2", len(cdf))
	}
	if cdf[0].X != 1 || !almost(cdf[0].P, 0.75, 1e-12) {
		t.Fatalf("first point %+v", cdf[0])
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	if p := CDFAt(cdf, 0); p != 0 {
		t.Fatalf("CDFAt(0) = %v", p)
	}
	if p := CDFAt(cdf, 2); !almost(p, 0.5, 1e-12) {
		t.Fatalf("CDFAt(2) = %v", p)
	}
	if p := CDFAt(cdf, 100); p != 1 {
		t.Fatalf("CDFAt(100) = %v", p)
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0.5, 1.5, 2.5, 9.5, -4, 40}, 0, 10, 10)
	if width != 1 {
		t.Fatalf("width = %v", width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	if counts[0] != 2 { // 0.5 plus the clamped -4
		t.Fatalf("bin0 = %d", counts[0])
	}
	if counts[9] != 2 { // 9.5 plus the clamped 40
		t.Fatalf("bin9 = %d", counts[9])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if c, _ := Histogram([]float64{1}, 5, 5, 10); c != nil {
		t.Fatal("degenerate range should return nil")
	}
	if c, _ := Histogram([]float64{1}, 0, 10, 0); c != nil {
		t.Fatal("zero bins should return nil")
	}
}

func TestShare(t *testing.T) {
	s := Share([]float64{10, 30, 60})
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if !almost(s[0], 0.6, 1e-12) || !almost(s[1], 0.3, 1e-12) || !almost(s[2], 0.1, 1e-12) {
		t.Fatalf("shares = %v", s)
	}
}

func TestShareSumsToOne(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		pos := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(math.Abs(v), 1e9) // measurement-scale values
			if v > 0 {
				pos = true
			}
			xs = append(xs, v)
		}
		s := Share(xs)
		if !pos {
			return s == nil
		}
		sum := 0.0
		for i, v := range s {
			if i > 0 && v > s[i-1] {
				return false // must be descending
			}
			sum += v
		}
		return almost(sum, 1, 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShareZeroTotal(t *testing.T) {
	if Share([]float64{0, 0}) != nil {
		t.Fatal("zero total should return nil")
	}
}

func TestHourBins(t *testing.T) {
	var h HourBins
	h.Add(9, 2)
	h.Add(9, 4)
	h.Add(21, 6)
	m := h.Means()
	if m[9] != 3 || m[21] != 6 || m[0] != 0 {
		t.Fatalf("means = %v", m)
	}
}

func TestHourBinsPanicOnBadHour(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var h HourBins
	h.Add(24, 1)
}

func TestPeakToTroughRatio(t *testing.T) {
	var h HourBins
	h.Add(3, 1)
	h.Add(20, 3)
	if r := h.PeakToTroughRatio(); !almost(r, 3, 1e-12) {
		t.Fatalf("ratio = %v", r)
	}
	var flat HourBins
	flat.Add(1, 5)
	if r := flat.PeakToTroughRatio(); r != 1 {
		t.Fatalf("single-hour ratio = %v", r)
	}
}

func TestCounterRankedDeterministic(t *testing.T) {
	c := NewCounter()
	c.Add("apple", 5)
	c.Add("intel", 5)
	c.Add("roku", 2)
	r := c.Ranked()
	if r[0].Key != "apple" || r[1].Key != "intel" || r[2].Key != "roku" {
		t.Fatalf("ranked = %v", r)
	}
	if c.Get("apple") != 5 || c.Len() != 3 {
		t.Fatal("Get/Len wrong")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almost(g, 0, 1e-12) {
		t.Fatalf("uniform gini = %v", g)
	}
	// One device owns everything in a 10-sample set → (n-1)/n = 0.9.
	xs := make([]float64, 10)
	xs[0] = 100
	if g := Gini(xs); !almost(g, 0.9, 1e-12) {
		t.Fatalf("concentrated gini = %v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
}

func TestGiniRange(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Mod(math.Abs(v), 1e9))
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMatchesSortPosition(t *testing.T) {
	// For a large sorted sample, Quantile(q) must sit between the
	// surrounding order statistics.
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95} {
		v := Quantile(xs, q)
		if v < xs[0] || v > xs[len(xs)-1] {
			t.Fatalf("q=%v out of range: %v", q, v)
		}
		if !almost(v, q*1000, 1e-9) {
			t.Fatalf("q=%v: got %v want %v", q, v, q*1000)
		}
	}
}
