// Package stats implements the descriptive statistics used throughout the
// study: empirical CDFs, quantiles, histograms, and time-binned aggregates.
// Every figure in the paper is one of these shapes — CDFs (Figs. 3, 4, 7,
// 10, 11), means with deviations (Figs. 8, 9, 13), scatter joins (Figs. 5,
// 15), and ranked shares (Figs. 17–19).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the standard moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample returns a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the default of R and
// NumPy). It panics on an empty sample or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Percentile returns the p-th percentile (p in [0, 100]).
func Percentile(xs []float64, p float64) float64 { return Quantile(xs, p/100) }

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples ≤ X
}

// CDF computes the empirical CDF of xs: one point per distinct value, with
// P the fraction of samples ≤ X. The result is sorted by X and ends at
// P = 1. An empty sample yields nil.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to the run's last index.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at x: the fraction
// of the sample ≤ x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.X > x {
			break
		}
		p = pt.P
	}
	return p
}

// Histogram bins xs into nbins equal-width bins over [min, max]. Values
// outside the range clamp to the edge bins. It returns the bin counts and
// the bin width.
func Histogram(xs []float64, min, max float64, nbins int) ([]int, float64) {
	if nbins <= 0 || max <= min {
		return nil, 0
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, width
}

// Share converts a set of non-negative quantities into fractions of their
// total, sorted descending. This is the shape of Figs. 17 and 19 (per-device
// and per-domain traffic shares). A zero total yields nil.
func Share(xs []float64) []float64 {
	total := 0.0
	for _, x := range xs {
		if x > 0 {
			total += x
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		out = append(out, x/total)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// HourBins aggregates (hourOfDay, value) observations into 24 per-hour
// means. Hours with no observations report NaN-free zero means with a zero
// count, so callers can distinguish "no data" from "zero".
type HourBins struct {
	Sum   [24]float64
	Count [24]int
}

// Add records one observation for the given hour of day.
func (h *HourBins) Add(hour int, v float64) {
	if hour < 0 || hour > 23 {
		panic(fmt.Sprintf("stats: hour %d out of range", hour))
	}
	h.Sum[hour] += v
	h.Count[hour]++
}

// Means returns the 24 per-hour means (0 where no observations exist).
func (h *HourBins) Means() [24]float64 {
	var out [24]float64
	for i := 0; i < 24; i++ {
		if h.Count[i] > 0 {
			out[i] = h.Sum[i] / float64(h.Count[i])
		}
	}
	return out
}

// PeakToTroughRatio returns max/min of the per-hour means over hours with
// data; it quantifies how diurnal a series is (Fig. 13's weekday vs weekend
// contrast). Returns 1 if fewer than two hours have data or min is zero.
func (h *HourBins) PeakToTroughRatio() float64 {
	means := h.Means()
	min, max := math.Inf(1), math.Inf(-1)
	n := 0
	for i := 0; i < 24; i++ {
		if h.Count[i] == 0 {
			continue
		}
		n++
		if means[i] < min {
			min = means[i]
		}
		if means[i] > max {
			max = means[i]
		}
	}
	if n < 2 || min <= 0 {
		return 1
	}
	return max / min
}

// Counter counts occurrences of string keys and reports them ranked. It
// backs the manufacturer histogram (Fig. 12) and domain top-N counts
// (Fig. 18).
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add increments key by n.
func (c *Counter) Add(key string, n int) { c.counts[key] += n }

// Get returns the count for key.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// RankedCount is a (key, count) pair.
type RankedCount struct {
	Key   string
	Count int
}

// Ranked returns all keys sorted by descending count, breaking ties
// alphabetically so output is deterministic.
func (c *Counter) Ranked() []RankedCount {
	out := make([]RankedCount, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, RankedCount{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Gini computes the Gini coefficient of a non-negative sample — 0 for
// perfectly even, →1 for fully concentrated. Used to characterize how
// concentrated per-device and per-domain usage is beyond the paper's
// top-share numbers.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}
