// Package mac implements the MAC-address handling the paper's data
// pipeline relies on: parsing/formatting, OUI (top-24-bit) extraction for
// manufacturer lookup, and the privacy transform the study applied —
// "anonymize the lower half of each address, which allows us to identify
// manufacturers without identifying specific devices" (§3.2.2).
package mac

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Parse parses a MAC address in colon- or dash-separated hex form.
func Parse(s string) (Addr, error) {
	var a Addr
	norm := strings.NewReplacer("-", ":", ".", ":").Replace(strings.TrimSpace(s))
	parts := strings.Split(norm, ":")
	if len(parts) != 6 {
		return a, fmt.Errorf("mac: %q: want 6 octets, got %d", s, len(parts))
	}
	for i, p := range parts {
		var b byte
		if _, err := fmt.Sscanf(p, "%02x", &b); err != nil || len(p) != 2 {
			return a, fmt.Errorf("mac: %q: bad octet %q", s, p)
		}
		a[i] = b
	}
	return a, nil
}

// MustParse parses s or panics. For tests and embedded tables.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address as lower-case colon-separated hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// MarshalText implements encoding.TextMarshaler (JSON/CSV friendliness).
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Addr) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// OUI returns the top 24 bits — the organizationally unique identifier
// that maps to a manufacturer.
func (a Addr) OUI() uint32 {
	return uint32(a[0])<<16 | uint32(a[1])<<8 | uint32(a[2])
}

// NIC returns the bottom 24 bits — the per-device portion that the study
// obfuscates before collection.
func (a Addr) NIC() uint32 {
	return uint32(a[3])<<16 | uint32(a[4])<<8 | uint32(a[5])
}

// IsMulticast reports whether the group bit is set.
func (a Addr) IsMulticast() bool { return a[0]&0x01 != 0 }

// IsLocallyAdministered reports whether the U/L bit is set (randomized or
// software-assigned addresses).
func (a Addr) IsLocallyAdministered() bool { return a[0]&0x02 != 0 }

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (a Addr) IsBroadcast() bool {
	return a == Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsZero reports whether the address is all zero.
func (a Addr) IsZero() bool { return a == Addr{} }

// FromOUI builds an address from a 24-bit OUI and a 24-bit NIC portion.
func FromOUI(oui uint32, nic uint32) Addr {
	return Addr{
		byte(oui >> 16), byte(oui >> 8), byte(oui),
		byte(nic >> 16), byte(nic >> 8), byte(nic),
	}
}

// Anonymizer applies the paper's MAC anonymization: it keeps the OUI
// intact and replaces the NIC portion with a keyed hash of itself, so the
// same device always maps to the same pseudonym within one study but the
// physical identity is not recoverable without the key.
type Anonymizer struct {
	key []byte

	// A home sees a handful of distinct devices but the capture path
	// anonymizes the device MAC of every frame, so the HMAC result is
	// memoized. The cache is unbounded by design: its cardinality is the
	// number of distinct devices behind one gateway (tens, not millions).
	mu    sync.RWMutex
	cache map[Addr]Addr
}

// NewAnonymizer returns an Anonymizer keyed by key. Distinct keys produce
// unlinkable pseudonym spaces (e.g. one key per study period).
func NewAnonymizer(key []byte) *Anonymizer {
	return &Anonymizer{key: append([]byte(nil), key...), cache: make(map[Addr]Addr)}
}

// Anonymize returns the address with its lower 24 bits replaced by an
// HMAC-SHA256-derived pseudonym. The OUI — and therefore manufacturer
// lookup — is preserved. Anonymize is deterministic for a fixed key and
// safe for concurrent use.
func (z *Anonymizer) Anonymize(a Addr) Addr {
	z.mu.RLock()
	out, ok := z.cache[a]
	z.mu.RUnlock()
	if ok {
		return out
	}
	mac := hmac.New(sha256.New, z.key)
	mac.Write(a[:])
	sum := mac.Sum(nil)
	nic := binary.BigEndian.Uint32(sum[:4]) & 0x00ffffff
	out = FromOUI(a.OUI(), nic)
	// Preserve the unicast/global bits of the original OUI; hashing only
	// touched the NIC so nothing to fix — but keep the invariant explicit.
	out[0] = a[0]
	z.mu.Lock()
	z.cache[a] = out
	z.mu.Unlock()
	return out
}

// CacheSize returns the number of memoized pseudonyms — the telemetry
// layer exports it as the anonymization cache gauge.
func (z *Anonymizer) CacheSize() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.cache)
}
