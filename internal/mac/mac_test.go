package mac

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"00:1a:2b:3c:4d:5e", "ff:ff:ff:ff:ff:ff", "00:00:00:00:00:01"} {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseSeparators(t *testing.T) {
	a, err := Parse("00-1A-2B-3C-4D-5E")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "00:1a:2b:3c:4d:5e" {
		t.Fatalf("got %q", a.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "00:11:22:33:44", "00:11:22:33:44:55:66", "zz:11:22:33:44:55", "0:1:2:3:4:5"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) succeeded", s)
		}
	}
}

func TestOUIAndNIC(t *testing.T) {
	a := MustParse("a4:b1:c2:01:02:03")
	if a.OUI() != 0xa4b1c2 {
		t.Fatalf("OUI = %06x", a.OUI())
	}
	if a.NIC() != 0x010203 {
		t.Fatalf("NIC = %06x", a.NIC())
	}
}

func TestFromOUIInverse(t *testing.T) {
	if err := quick.Check(func(oui, nic uint32) bool {
		oui &= 0xffffff
		nic &= 0xffffff
		a := FromOUI(oui, nic)
		return a.OUI() == oui && a.NIC() == nic
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlagBits(t *testing.T) {
	if !MustParse("01:00:5e:00:00:01").IsMulticast() {
		t.Fatal("multicast bit not detected")
	}
	if MustParse("00:1a:2b:3c:4d:5e").IsMulticast() {
		t.Fatal("unicast flagged multicast")
	}
	if !MustParse("02:00:00:00:00:01").IsLocallyAdministered() {
		t.Fatal("U/L bit not detected")
	}
	if !MustParse("ff:ff:ff:ff:ff:ff").IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
	var zero Addr
	if !zero.IsZero() {
		t.Fatal("zero not detected")
	}
}

func TestAnonymizePreservesOUI(t *testing.T) {
	z := NewAnonymizer([]byte("study-key"))
	if err := quick.Check(func(raw [6]byte) bool {
		a := Addr(raw)
		out := z.Anonymize(a)
		return out.OUI() == a.OUI()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizeDeterministic(t *testing.T) {
	z := NewAnonymizer([]byte("k"))
	a := MustParse("a4:b1:c2:01:02:03")
	if z.Anonymize(a) != z.Anonymize(a) {
		t.Fatal("not deterministic")
	}
}

func TestAnonymizeChangesNIC(t *testing.T) {
	z := NewAnonymizer([]byte("k"))
	changed := 0
	for nic := uint32(0); nic < 100; nic++ {
		a := FromOUI(0xa4b1c2, nic)
		if z.Anonymize(a).NIC() != a.NIC() {
			changed++
		}
	}
	if changed < 99 {
		t.Fatalf("only %d/100 NICs changed", changed)
	}
}

func TestAnonymizeKeysUnlinkable(t *testing.T) {
	a := MustParse("a4:b1:c2:01:02:03")
	z1 := NewAnonymizer([]byte("period-1"))
	z2 := NewAnonymizer([]byte("period-2"))
	if z1.Anonymize(a) == z2.Anonymize(a) {
		t.Fatal("different keys produced the same pseudonym")
	}
}

func TestAnonymizeInjectiveOnSample(t *testing.T) {
	// Distinct devices should (overwhelmingly) keep distinct pseudonyms —
	// collisions would merge devices in the Traffic data set.
	z := NewAnonymizer([]byte("k"))
	seen := make(map[Addr]Addr)
	for nic := uint32(0); nic < 5000; nic++ {
		a := FromOUI(0xa4b1c2, nic)
		out := z.Anonymize(a)
		if prev, ok := seen[out]; ok {
			t.Fatalf("collision: %v and %v both -> %v", prev, a, out)
		}
		seen[out] = a
	}
}
