package ouidb

import (
	"testing"

	"natpeek/internal/mac"
)

func TestLookupKnown(t *testing.T) {
	a := mac.FromOUI(0xB827EB, 0x123456)
	e := Lookup(a)
	if e.Manufacturer != "Raspberry-Pi" || e.Category != CatRaspberryPi {
		t.Fatalf("got %+v", e)
	}
}

func TestLookupUnknown(t *testing.T) {
	a := mac.FromOUI(0xDEAD01, 1)
	e := Lookup(a)
	if e.Category != CatUnknown || e.Manufacturer != "" {
		t.Fatalf("got %+v", e)
	}
}

func TestLookupSurvivesAnonymization(t *testing.T) {
	// The whole point of hashing only the lower 24 bits: manufacturer
	// lookup must be unchanged by anonymization.
	z := mac.NewAnonymizer([]byte("k"))
	a := mac.FromOUI(0x001CB3, 0xABCDEF)
	if Lookup(z.Anonymize(a)) != Lookup(a) {
		t.Fatal("anonymization changed manufacturer lookup")
	}
}

func TestNetgearIsBISmark(t *testing.T) {
	if !IsBISmarkRouter(mac.FromOUI(0x204E7F, 1)) {
		t.Fatal("Netgear OUI not flagged as BISmark hardware")
	}
	if IsBISmarkRouter(mac.FromOUI(0x001CB3, 1)) {
		t.Fatal("Apple flagged as BISmark hardware")
	}
}

func TestOUIsForEveryPaperManufacturer(t *testing.T) {
	for _, m := range []string{
		"Apple", "Intel", "Samsung", "Asus", "Microsoft", "Roku", "TiVo",
		"Nintendo", "Hewlett-Packard", "VMware", "Raspberry-Pi", "Epson",
		"HTC", "Compal", "TP-Link", "UniData", "Polycom",
	} {
		if len(OUIsFor(m)) == 0 {
			t.Errorf("no OUI registered for %q", m)
		}
	}
}

func TestOUIsForSorted(t *testing.T) {
	ouis := OUIsFor("Apple")
	if len(ouis) < 2 {
		t.Fatal("want multiple Apple OUIs")
	}
	for i := 1; i < len(ouis); i++ {
		if ouis[i] <= ouis[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestRegistryConsistent(t *testing.T) {
	seen := make(map[uint32]bool)
	for _, e := range registry {
		if e.OUI > 0xffffff {
			t.Errorf("OUI %06x exceeds 24 bits", e.OUI)
		}
		if seen[e.OUI] {
			t.Errorf("duplicate OUI %06x", e.OUI)
		}
		seen[e.OUI] = true
		if e.Manufacturer == "" || e.Category == "" || e.Category == CatUnknown {
			t.Errorf("incomplete entry %+v", e)
		}
	}
}

func TestManufacturersDeduped(t *testing.T) {
	ms := Manufacturers()
	seen := make(map[string]bool)
	for _, m := range ms {
		if seen[m] {
			t.Fatalf("duplicate manufacturer %q", m)
		}
		seen[m] = true
	}
	if !seen["Apple"] || !seen["Roku"] {
		t.Fatal("expected manufacturers missing")
	}
}

func TestAllCategoriesMatchesFig12(t *testing.T) {
	cats := AllCategories()
	if len(cats) != 17 {
		t.Fatalf("got %d categories", len(cats))
	}
	if cats[0] != CatApple || cats[2] != CatIntel {
		t.Fatalf("Fig. 12 order violated: %v", cats[:3])
	}
}

func TestEveryCategoryHasARegistryEntry(t *testing.T) {
	have := make(map[Category]bool)
	for _, e := range registry {
		have[e.Category] = true
	}
	for _, c := range AllCategories() {
		if !have[c] {
			t.Errorf("category %q has no registered OUI", c)
		}
	}
	if !have[CatPrinter] {
		t.Error("printer category missing")
	}
}
