// Package ouidb maps MAC OUIs (top 24 bits) to manufacturers and to the
// device-type taxonomy of Fig. 12. The paper's Traffic data set hashes the
// lower half of every MAC but keeps the OUI precisely so this lookup stays
// possible: "The first 24 bits allow us to look up the manufacturer" (§5.4).
//
// The embedded registry covers every manufacturer the paper names
// (Fig. 12 and its footnote) with representative real-world OUI
// assignments. It is deliberately small — a full IEEE registry is ~30k
// entries — because the synthetic device population only mints addresses
// from these vendors.
package ouidb

import (
	"sort"

	"natpeek/internal/mac"
)

// Category is the Fig. 12 x-axis taxonomy.
type Category string

// Categories, in the order Fig. 12 plots them.
const (
	CatApple       Category = "Apple"
	CatODM         Category = "ODM"
	CatIntel       Category = "Intel"
	CatSmartPhone  Category = "SmartPhone"
	CatSamsung     Category = "Samsung"
	CatGateway     Category = "Gateway"
	CatAsus        Category = "Asus"
	CatMisc        Category = "Misc."
	CatMicrosoft   Category = "Microsoft"
	CatInternetTV  Category = "InternetTV"
	CatGaming      Category = "Gaming"
	CatWireless    Category = "WirelessCard"
	CatVoIP        Category = "VoIP"
	CatHP          Category = "Hewlett-Packard"
	CatHardware    Category = "Hardware"
	CatVMware      Category = "VMware"
	CatRaspberryPi Category = "Raspberry-Pi"
	CatPrinter     Category = "Printer"
	CatUnknown     Category = "Unknown"
)

// Entry is one OUI registration.
type Entry struct {
	OUI          uint32
	Manufacturer string
	Category     Category
}

// registry lists representative OUIs for every vendor named in Fig. 12 and
// its footnote.
var registry = []Entry{
	// Apple.
	{0x001CB3, "Apple", CatApple},
	{0x0017F2, "Apple", CatApple},
	{0x28CFDA, "Apple", CatApple},
	{0x3C0754, "Apple", CatApple},
	{0x7CC3A1, "Apple", CatApple},
	{0xA4B197, "Apple", CatApple},
	{0xD8A25E, "Apple", CatApple},
	// ODMs: Compal, Hon Hai (Foxconn), Quanta, Universal Global Scientific,
	// Wistron InfoComm.
	{0x001A73, "Compal", CatODM},
	{0x0026F1, "Hon Hai Precision", CatODM},
	{0x001E68, "Quanta", CatODM},
	{0x00247E, "Universal Global Scientific", CatODM},
	{0x30144A, "Wistron InfoComm", CatODM},
	// Intel wireless cards in laptops.
	{0x001B77, "Intel", CatIntel},
	{0x0024D7, "Intel", CatIntel},
	{0x4C8093, "Intel", CatIntel},
	{0x8086F2, "Intel", CatIntel},
	// Smart phones: HTC, LG, Motorola, Nokia, Murata (Samsung Galaxy S II).
	{0x38E7D8, "HTC", CatSmartPhone},
	{0x001C62, "LG Electronics", CatSmartPhone},
	{0x001A1B, "Motorola", CatSmartPhone},
	{0x0021AB, "Nokia", CatSmartPhone},
	{0x001D25, "Murata", CatSmartPhone},
	// Samsung phones and tablets, shown separately in Fig. 12.
	{0x002454, "Samsung", CatSamsung},
	{0x5C0A5B, "Samsung", CatSamsung},
	{0x8C7712, "Samsung", CatSamsung},
	// Gateways: TP-Link, Realtek, Liteon, D-Link, Cisco-Linksys, Belkin,
	// Askey.
	{0x647002, "TP-Link", CatGateway},
	{0x00E04C, "Realtek", CatGateway},
	{0x001CBF, "Liteon", CatGateway},
	{0x001B11, "D-Link", CatGateway},
	{0x0018F8, "Cisco-Linksys", CatGateway},
	{0x001150, "Belkin", CatGateway},
	{0x0030B8, "Askey", CatGateway},
	// Asus, shown separately.
	{0x00248C, "Asus", CatAsus},
	{0xBCAEC5, "Asus", CatAsus},
	// Misc.: Polycom, Prolifix, Pegatron.
	{0x0004F2, "Polycom", CatMisc},
	{0x00117F, "Prolifix", CatMisc},
	{0x10C37B, "Pegatron", CatMisc},
	// Microsoft (possibly Xbox), shown separately.
	{0x0050F2, "Microsoft", CatMicrosoft},
	{0x7CED8D, "Microsoft", CatMicrosoft},
	// Internet TV: Roku, TiVo, ASRock.
	{0xB0A737, "Roku", CatInternetTV},
	{0x00119B, "TiVo", CatInternetTV},
	{0xBC5FF4, "ASRock", CatInternetTV},
	// Gaming: Nintendo, Mitsumi (controllers for PS/Xbox/Wii).
	{0x0019FD, "Nintendo", CatGaming},
	{0x0009BF, "Mitsumi", CatGaming},
	{0x001FE2, "Sony Computer Entertainment", CatGaming},
	// Wireless cards: AzureWave, GainSpan.
	{0x74F06D, "AzureWave", CatWireless},
	{0x20F85E, "GainSpan", CatWireless},
	// VoIP: UniData.
	{0x0009D2, "UniData", CatVoIP},
	// Hewlett-Packard.
	{0x002264, "Hewlett-Packard", CatHP},
	{0x3C4A92, "Hewlett-Packard", CatHP},
	// Hardware: Giga-Byte, Microchip.
	{0x001FD0, "Giga-Byte", CatHardware},
	{0x001EC0, "Microchip", CatHardware},
	// VMware virtual NICs.
	{0x005056, "VMware", CatVMware},
	// Raspberry Pi Foundation.
	{0xB827EB, "Raspberry-Pi", CatRaspberryPi},
	// Printer: Epson (the paper's one printer).
	{0x00264A, "Epson", CatPrinter},
	// Netgear: the BISmark router itself; the paper removes these from
	// Fig. 12 ("We have removed all references to Netgear originating from
	// our BISmark routers"), and analysis code does the same.
	{0x204E7F, "Netgear", CatGateway},
	{0xA021B7, "Netgear", CatGateway},
}

var byOUI = func() map[uint32]Entry {
	m := make(map[uint32]Entry, len(registry))
	for _, e := range registry {
		m[e.OUI] = e
	}
	return m
}()

// Lookup returns the registry entry for the address's OUI. Unregistered
// OUIs return an Entry with Manufacturer "" and Category CatUnknown.
func Lookup(a mac.Addr) Entry {
	if e, ok := byOUI[a.OUI()]; ok {
		return e
	}
	return Entry{OUI: a.OUI(), Category: CatUnknown}
}

// LookupOUI is Lookup on a bare 24-bit OUI.
func LookupOUI(oui uint32) Entry {
	if e, ok := byOUI[oui]; ok {
		return e
	}
	return Entry{OUI: oui, Category: CatUnknown}
}

// Manufacturer returns the manufacturer name for the address, or "" if
// unknown.
func Manufacturer(a mac.Addr) string { return Lookup(a).Manufacturer }

// IsBISmarkRouter reports whether the address belongs to Netgear — the
// platform's own hardware, which Fig. 12 excludes.
func IsBISmarkRouter(a mac.Addr) bool {
	return Lookup(a).Manufacturer == "Netgear"
}

// OUIsFor returns all registered OUIs for a manufacturer, sorted. The
// device generator uses this to mint addresses.
func OUIsFor(manufacturer string) []uint32 {
	var out []uint32
	for _, e := range registry {
		if e.Manufacturer == manufacturer {
			out = append(out, e.OUI)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Manufacturers returns all registered manufacturer names, sorted and
// deduplicated.
func Manufacturers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range registry {
		if !seen[e.Manufacturer] {
			seen[e.Manufacturer] = true
			out = append(out, e.Manufacturer)
		}
	}
	sort.Strings(out)
	return out
}

// AllCategories returns the Fig. 12 category order.
func AllCategories() []Category {
	return []Category{
		CatApple, CatODM, CatIntel, CatSmartPhone, CatSamsung, CatGateway,
		CatAsus, CatMisc, CatMicrosoft, CatInternetTV, CatGaming, CatWireless,
		CatVoIP, CatHP, CatHardware, CatVMware, CatRaspberryPi,
	}
}
